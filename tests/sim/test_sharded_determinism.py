"""The tentpole property: ``sharded(seed, workers=k) == single(seed)``.

Hypothesis drives randomized fleets (size, seed, traffic shape) through
the inline transport at k ∈ {1, 2, 4} and requires byte-identical
canonical output, traces, and merged metrics.  Separate deterministic
tests cover the process transport (real spawned workers) against the
serial run, using the module-level fleet builder from
:mod:`repro.bench.underload` so spawn children can import it.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.machine import Machine
from repro.params import MachineConfig
from repro.sim import FleetNode, ShardedSim, Sleep, SleepUntil

WINDOW = 200_000


class TrafficNode(FleetNode):
    """Seeded random-but-deterministic workload: every node computes,
    sleeps, and posts to pseudo-random peers at pseudo-random latencies
    >= the window — all drawn from ``Random(f"{seed}:{index}")``, so the
    node is a pure function of its parameters."""

    def __init__(self, index, seed, fleet_size=2, rounds=2, **kwargs):
        super().__init__(index, Machine(MachineConfig(num_cpus=1,
                                                      mem_kb=1024)))
        self.fleet_size = fleet_size
        self.payloads = []
        rng = random.Random(f"traffic:{seed}:{index}")
        self.spawn_traced(self._task(rng, rounds), name=f"traffic{index}")

    def _task(self, rng, rounds):
        for r in range(rounds):
            yield Sleep(rng.randrange(1_000, 3 * WINDOW))
            dst = rng.randrange(self.fleet_size)
            if dst != self.index:
                self.post(dst, "data", payload=(self.index, r),
                          latency_cycles=WINDOW + rng.randrange(WINDOW))
            if rng.random() < 0.5:
                grid = (self.machine.clock.cycles // WINDOW + 2) * WINDOW
                yield SleepUntil(grid + rng.randrange(500))

    def on_message(self, msg):
        super().on_message(msg)
        self.payloads.append(msg.payload)

    def result(self):
        out = super().result()
        out["payloads"] = self.payloads
        return out


def _build_traffic(index, seed, **kwargs):
    return TrafficNode(index, seed, **kwargs)


def _run(machines, seed, rounds, workers):
    sim = ShardedSim(_build_traffic, machines, seed=seed, workers=workers,
                     transport="inline", window_cycles=WINDOW,
                     builder_kwargs={"fleet_size": machines,
                                     "rounds": rounds})
    return sim.run()


@settings(max_examples=10, deadline=None)
@given(machines=st.integers(min_value=1, max_value=5),
       seed=st.integers(min_value=0, max_value=2**31),
       rounds=st.integers(min_value=1, max_value=3))
def test_sharded_equals_single_property(machines, seed, rounds):
    """For every fleet shape: k-sharded output ≡ serial output, byte for
    byte — canonical output, merged trace, and merged metrics."""
    base = _run(machines, seed, rounds, workers=1)
    base_bytes = base.canonical_output()
    for k in (2, 4):
        sharded = _run(machines, seed, rounds, workers=k)
        assert sharded.canonical_output() == base_bytes
        assert sharded.canonical == base.canonical
        assert sharded.metrics == base.metrics
        assert sharded.windows == base.windows
        assert sharded.messages == base.messages


def test_every_posted_payload_arrives_exactly_once():
    res = _run(4, seed=99, rounds=3, workers=2)
    sent = sum(r["messages_sent"] for r in res.node_results.values())
    got = sum(len(r["payloads"]) for r in res.node_results.values())
    assert sent == got == res.messages


# ---------------------------------------------------------------------------
# the process transport: real spawned workers vs. the serial fallback
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("workers", [2, 4])
def test_process_transport_matches_serial(workers):
    from repro.bench.underload import run_fleet_under_load

    serial = run_fleet_under_load(machines=4, workers=1, rounds=1,
                                  files=2, iperf_bytes=64 * 1024, beats=2)
    procs = run_fleet_under_load(machines=4, workers=workers, rounds=1,
                                 files=2, iperf_bytes=64 * 1024, beats=2,
                                 transport="process")
    assert procs.canonical_output() == serial.canonical_output()
    assert procs.metrics == serial.metrics


def test_fleet_heartbeat_ring_closes():
    from repro.bench.underload import run_fleet_under_load

    res = run_fleet_under_load(machines=3, workers=1, rounds=1, files=2,
                               iperf_bytes=64 * 1024, beats=2)
    for row in res.node_results.values():
        assert row["heartbeats_seen"] == 2
        assert row["records"] == 2          # one attach + one detach
        assert row["aborts"] == 0
        assert row["kbuild_elapsed_us"] > 0
        assert row["iperf_mbit_s"] > 0


def test_chaos_campaign_worker_invariance():
    from repro.bench.chaoscampaign import run_chaos_campaign

    serial = run_chaos_campaign(episodes=4, seed=31)
    fanned = run_chaos_campaign(episodes=4, seed=31, workers=2)
    assert fanned.canonical_output() == serial.canonical_output()


def test_fault_sweep_worker_invariance():
    from repro.bench.faultsweep import run_fault_sweep

    serial = run_fault_sweep(rates=(0.0, 0.25), rounds=6, seed=5)
    fanned = run_fault_sweep(rates=(0.0, 0.25), rounds=6, seed=5,
                             workers=2)
    assert fanned == serial


def test_crash_matrix_worker_invariance():
    from repro.bench.crashmatrix import (canonical_matrix_output,
                                         run_crash_matrix)

    serial = run_crash_matrix(workers=1)
    fanned = run_crash_matrix(workers=2)
    assert canonical_matrix_output(fanned) == canonical_matrix_output(serial)
    assert all(c.ok for c in serial if not c.skipped)
