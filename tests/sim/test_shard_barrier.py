"""Barrier-protocol unit tests: timer cancellation across shard windows,
lookahead enforcement, cross-shard unblocking, and fleet deadlock.

The timer-cancel pair is the regression the sharded refactor must never
reintroduce: a :class:`~repro.hw.clock.TimerHandle` cancelled as the
result of a cross-shard message must stay dead after the barrier
exchange — the cancellation serializes into the event batch like any
other local effect, so a later window can never resurrect the handle.
"""

from __future__ import annotations

import pytest

from repro.hw.machine import Machine
from repro.params import MachineConfig
from repro.sim import (FleetNode, Shard, ShardedSim, ShardError,
                       SimDeadlock, Sleep, WaitFor)

WINDOW = 200_000


def _machine() -> Machine:
    return Machine(MachineConfig(num_cpus=1, mem_kb=1024))


class TimerNode(FleetNode):
    """Arms a local timer well past several barrier windows; an inbound
    ``cancel`` message disarms it."""

    TIMER_AT = 5 * WINDOW + 17

    def __init__(self, index, seed, **kwargs):
        super().__init__(index, _machine())
        self.timer_fired = False
        self.handle = self.machine.clock.schedule_at(
            self.TIMER_AT, self._fire)

    def _fire(self):
        self.timer_fired = True

    def on_message(self, msg):
        super().on_message(msg)
        if msg.kind == "cancel":
            self.handle.cancel()

    def result(self):
        out = super().result()
        out["timer_fired"] = self.timer_fired
        out["handle_pending"] = self.handle.pending
        return out


class CancelNode(FleetNode):
    """Sends the cancel (or nothing) early in the first window."""

    def __init__(self, index, seed, send_cancel=True, **kwargs):
        super().__init__(index, _machine())
        if send_cancel:
            self.spawn_traced(self._task(), name="canceller")

    def _task(self):
        yield Sleep(1_000)
        self.post(0, "cancel")


def _cancel_fleet(send_cancel, workers):
    def build(index, seed, **kwargs):
        if index == 0:
            return TimerNode(index, seed)
        return CancelNode(index, seed, send_cancel=send_cancel)

    sim = ShardedSim(build, 2, workers=workers, transport="inline",
                     window_cycles=WINDOW)
    return sim.run()


@pytest.mark.parametrize("workers", [1, 2])
def test_cancelled_timer_never_fires_after_barrier(workers):
    """The cancel message lands at ~window 2; the timer deadline sits in
    window 6.  Whatever shard hosts which node, the handle must be dead
    by the time its window arrives."""
    res = _cancel_fleet(send_cancel=True, workers=workers)
    assert res.node_results[0]["timer_fired"] is False
    assert res.node_results[0]["handle_pending"] is False
    assert res.node_results[0]["messages_received"] == 1


@pytest.mark.parametrize("workers", [1, 2])
def test_uncancelled_timer_fires(workers):
    """Positive control: without the cancel the timer must fire — proving
    the test above passes because of the cancel, not because barrier
    windows silently drop pending timers."""
    res = _cancel_fleet(send_cancel=False, workers=workers)
    assert res.node_results[0]["timer_fired"] is True


def test_cancel_path_is_worker_invariant():
    outs = [_cancel_fleet(True, k).canonical_output() for k in (1, 2)]
    assert outs[0] == outs[1]


# ---------------------------------------------------------------------------
# lookahead enforcement
# ---------------------------------------------------------------------------

def test_post_below_window_latency_is_rejected():
    node = FleetNode(0, _machine())
    shard = Shard(0, min_latency=WINDOW)
    shard.add(node)
    with pytest.raises(ShardError, match="latency"):
        node.post(1, "too-fast", latency_cycles=WINDOW - 1)
    # at exactly the window it is legal (delivers strictly after this
    # window's end barrier for any send cycle > 0, and deterministically
    # at the next poll for send cycle 0)
    msg = node.post(1, "ok", latency_cycles=WINDOW)
    assert msg.deliver_cycle == node.machine.clock.cycles + WINDOW


def test_min_latency_below_window_is_rejected():
    with pytest.raises(ShardError, match="min_latency"):
        ShardedSim(lambda i, s: FleetNode(i, _machine()), 2,
                   window_cycles=WINDOW, min_latency=WINDOW // 2)


# ---------------------------------------------------------------------------
# cross-shard unblocking and fleet deadlock
# ---------------------------------------------------------------------------

class WaiterNode(FleetNode):
    """Blocks on a WaitFor that only an inbound message can satisfy."""

    def __init__(self, index, seed, **kwargs):
        super().__init__(index, _machine())
        self.woken_at = None
        self.spawn_traced(self._task(), name="waiter")

    def _task(self):
        yield WaitFor(lambda: bool(self.inbox), desc="fleet message")
        self.woken_at = self.machine.clock.cycles

    def result(self):
        out = super().result()
        out["woken_at"] = self.woken_at
        return out


class PokeNode(FleetNode):
    def __init__(self, index, seed, poke=True, **kwargs):
        super().__init__(index, _machine())
        if poke:
            self.spawn_traced(self._task(), name="poker")

    def _task(self):
        yield Sleep(50_000)
        self.post(0, "poke")


def _waiter_fleet(poke, workers):
    def build(index, seed, **kwargs):
        if index == 0:
            return WaiterNode(index, seed)
        return PokeNode(index, seed, poke=poke)

    return ShardedSim(build, 2, workers=workers, transport="inline",
                      window_cycles=WINDOW)


@pytest.mark.parametrize("workers", [1, 2])
def test_message_unblocks_waiter_across_shards(workers):
    res = _waiter_fleet(poke=True, workers=workers).run()
    woken = res.node_results[0]["woken_at"]
    # delivery cycle = 50_000 + WINDOW; the waiter resumes at (or after —
    # late delivery lands at the next poll) that instant
    assert woken is not None and woken >= 50_000 + WINDOW


@pytest.mark.parametrize("workers", [1, 2])
def test_blocked_fleet_with_no_messages_deadlocks(workers):
    with pytest.raises(SimDeadlock, match="waiter"):
        _waiter_fleet(poke=False, workers=workers).run()


def test_snapshot_ignores_process_global_fault_counter():
    """A fleet node's snapshot must be a pure function of the node: a
    fault counter leaked into this process by unrelated code (earlier
    tests, a co-hosted episode) must not show up — otherwise the serial
    run and a spawned worker's run disagree."""
    from repro import faults

    plan = faults.FaultPlan()
    plan.arm("transfer.hypercall-error", trigger_at=1)
    baseline = faults.injected_total()
    with faults.injected(plan):
        assert faults.fire("transfer.hypercall-error")
    assert faults.injected_total() == baseline + 1
    node = FleetNode(0, _machine())
    assert node.snapshot().faults_injected == 0
    node.faults_injected = 3
    assert node.snapshot().faults_injected == 3


def test_duplicate_machine_index_rejected():
    shard = Shard(0, min_latency=WINDOW)
    shard.add(FleetNode(0, _machine()))
    with pytest.raises(ShardError, match="duplicate"):
        shard.add(FleetNode(0, _machine()))
