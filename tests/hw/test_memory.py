"""Physical memory: allocation, ownership, contents, dirty generations."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import InvalidPhysicalAddress, OutOfMemory
from repro.hw.memory import OWNER_FREE, PhysicalMemory


def test_alloc_assigns_owner():
    mem = PhysicalMemory(16)
    f = mem.alloc(owner=3)
    assert mem.owner_of(f) == 3
    assert mem.free_frames == 15


def test_alloc_is_deterministic_lowest_first():
    mem = PhysicalMemory(16)
    assert mem.alloc(0) == 0
    assert mem.alloc(0) == 1


def test_free_returns_frame():
    mem = PhysicalMemory(4)
    f = mem.alloc(0)
    mem.free(f)
    assert mem.free_frames == 4
    assert mem.owner_of(f) == OWNER_FREE


def test_double_free_rejected():
    mem = PhysicalMemory(4)
    f = mem.alloc(0)
    mem.free(f)
    with pytest.raises(InvalidPhysicalAddress):
        mem.free(f)


def test_exhaustion_raises_oom():
    mem = PhysicalMemory(2)
    mem.alloc(0)
    mem.alloc(0)
    with pytest.raises(OutOfMemory):
        mem.alloc(0)


def test_alloc_many_all_or_nothing():
    mem = PhysicalMemory(4)
    with pytest.raises(OutOfMemory):
        mem.alloc_many(0, 5)
    assert mem.free_frames == 4  # nothing leaked


def test_alloc_specific():
    mem = PhysicalMemory(8)
    f = mem.alloc_specific(5, owner=2)
    assert f == 5
    assert mem.owner_of(5) == 2
    with pytest.raises(InvalidPhysicalAddress):
        mem.alloc_specific(5, owner=2)


def test_write_read_roundtrip():
    mem = PhysicalMemory(4)
    f = mem.alloc(0)
    mem.write(f, {"payload": 1})
    assert mem.read(f) == {"payload": 1}


def test_write_to_free_frame_rejected():
    mem = PhysicalMemory(4)
    with pytest.raises(InvalidPhysicalAddress):
        mem.write(0, "x")


def test_generation_bumps_on_write():
    """Migration's dirty logging depends on the per-frame generation."""
    mem = PhysicalMemory(4)
    f = mem.alloc(0)
    g0 = int(mem.generation[f])
    mem.write(f, "a")
    mem.write(f, "b")
    assert int(mem.generation[f]) == g0 + 2


def test_free_clears_contents():
    mem = PhysicalMemory(4)
    f = mem.alloc(0)
    mem.write(f, "secret")
    mem.free(f)
    f2 = mem.alloc(1)
    assert f2 == f  # frame reused
    assert mem.read(f2) is None  # no data leak across owners


def test_frames_owned_by():
    mem = PhysicalMemory(8)
    a = mem.alloc(1)
    b = mem.alloc(2)
    c = mem.alloc(1)
    owned = set(int(x) for x in mem.frames_owned_by(1))
    assert owned == {a, c}


def test_reassign_transfers_ownership():
    mem = PhysicalMemory(4)
    f = mem.alloc(1)
    mem.reassign(f, 2)
    assert mem.owner_of(f) == 2


def test_reassign_free_frame_rejected():
    mem = PhysicalMemory(4)
    with pytest.raises(InvalidPhysicalAddress):
        mem.reassign(0, 2)


def test_snapshot_owner_frames():
    mem = PhysicalMemory(8)
    f1 = mem.alloc(1)
    f2 = mem.alloc(1)
    mem.alloc(2)
    mem.write(f1, "one")
    snap = mem.snapshot_owner_frames(1)
    assert snap == {f1: "one", f2: None}


@settings(max_examples=50, deadline=None)
@given(st.lists(st.sampled_from(["alloc", "free"]), max_size=60))
def test_property_alloc_free_conserves_frames(ops):
    """No sequence of allocs/frees loses or duplicates frames."""
    mem = PhysicalMemory(16)
    held: list[int] = []
    for op in ops:
        if op == "alloc" and mem.free_frames:
            held.append(mem.alloc(0))
        elif op == "free" and held:
            mem.free(held.pop())
    assert mem.free_frames + len(held) == 16
    assert len(set(held)) == len(held)  # no frame handed out twice
