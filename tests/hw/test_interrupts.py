"""Interrupt fabric: lines, vectors, IPIs, IDT dispatch, privilege."""

import pytest

from repro.errors import HardwareError
from repro.hw.cpu import PrivilegeLevel
from repro.hw.interrupts import Idt, VEC_TIMER


def _gate(log, name="h"):
    def handler(cpu, vector):
        log.append((name, vector, int(cpu.pl)))
    return handler


def test_bind_and_raise_line(machine):
    log = []
    idt = Idt("test")
    idt.set_gate(VEC_TIMER, _gate(log))
    machine.boot_cpu.load_idt(idt)
    machine.intc.bind_line("timer", 0, VEC_TIMER)
    machine.intc.raise_line("timer")
    assert machine.intc.pending_count(0) == 1
    machine.poll()
    assert log == [("h", VEC_TIMER, 0)]


def test_unbound_line_is_an_error(machine):
    with pytest.raises(HardwareError):
        machine.intc.raise_line("nosuch")


def test_delivery_respects_interrupt_flag(machine):
    log = []
    idt = Idt("test")
    idt.set_gate(0x40, _gate(log))
    cpu = machine.boot_cpu
    cpu.load_idt(idt)
    cpu.cli()
    machine.intc.raise_vector(0, 0x40)
    machine.poll()
    assert log == []
    cpu.sti()
    machine.poll()
    assert log == [("h", 0x40, 0)]


def test_missing_gate_is_fatal(machine):
    machine.boot_cpu.load_idt(Idt("empty"))
    machine.intc.raise_vector(0, 0x41)
    with pytest.raises(HardwareError):
        machine.poll()


def test_handler_runs_at_gate_privilege_and_iret_restores(machine):
    """Hardware raises the PL for the handler; IRET restores the saved
    level — the frame Mercury's switch handler edits (§5.1.3)."""
    log = []
    idt = Idt("test")
    idt.set_gate(0x42, _gate(log), handler_pl=0)
    cpu = machine.boot_cpu
    cpu.load_idt(idt)
    cpu.set_privilege(PrivilegeLevel.PL3)
    machine.intc.raise_vector(0, 0x42)
    machine.poll()
    assert log == [("h", 0x42, 0)]        # ran at PL0
    assert cpu.pl == PrivilegeLevel.PL3   # restored


def test_handler_may_edit_iret_privilege(machine):
    """Overwriting _iret_pl changes the level returned to — the §5.1.3
    privileged-level switch mechanism."""
    idt = Idt("test")

    def switcher(cpu, vector):
        cpu._iret_pl = PrivilegeLevel.PL1

    idt.set_gate(0x43, switcher, handler_pl=0)
    cpu = machine.boot_cpu
    cpu.load_idt(idt)
    cpu.set_privilege(PrivilegeLevel.PL3)
    machine.intc.raise_vector(0, 0x43)
    machine.poll()
    assert cpu.pl == PrivilegeLevel.PL1


def test_ipi_charges_sender_and_queues_target(machine2):
    cpu0, cpu1 = machine2.cpus
    t0 = cpu0.rdtsc()
    machine2.intc.send_ipi(cpu0, 1, 0xFD)
    assert cpu0.rdtsc() - t0 == cpu0.cost.cyc_ipi_send
    assert machine2.intc.pending_count(1) == 1
    assert machine2.intc.sent_ipis == 1


def test_ipi_to_bad_cpu_rejected(machine):
    with pytest.raises(HardwareError):
        machine.intc.send_ipi(machine.boot_cpu, 7, 0xFD)


def test_consume_vector_removes_only_matching(machine):
    machine.intc.raise_vector(0, 0x50)
    machine.intc.raise_vector(0, 0x51)
    machine.intc.raise_vector(0, 0x50)
    assert machine.intc.consume_vector(0, 0x50) == 2
    assert machine.intc.pending_count(0) == 1


def test_payload_delivery(machine):
    got = []
    idt = Idt("test")
    idt.set_gate(0x44, lambda cpu, vec, payload: got.append(payload))
    machine.boot_cpu.load_idt(idt)
    machine.intc.raise_vector(0, 0x44, payload={"k": 1})
    machine.poll()
    assert got == [{"k": 1}]


def test_rebinding_a_line_moves_delivery(machine2):
    log0, log1 = [], []
    for cpu, log in zip(machine2.cpus, (log0, log1)):
        idt = Idt(f"cpu{cpu.cpu_id}")
        idt.set_gate(0x45, _gate(log))
        cpu.load_idt(idt)
    machine2.intc.bind_line("dev", 0, 0x45)
    machine2.intc.raise_line("dev")
    machine2.intc.bind_line("dev", 1, 0x45)  # rebind (mode switches do this)
    machine2.intc.raise_line("dev")
    machine2.poll()
    assert len(log0) == 1 and len(log1) == 1


def test_bad_vector_range():
    idt = Idt("x")
    with pytest.raises(HardwareError):
        idt.set_gate(0x100, lambda c, v: None)
