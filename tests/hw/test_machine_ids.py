"""Machine identity: ordinals come from an allocator, not hidden class
state, so names and NIC addresses depend only on construction order."""

from repro import Machine, small_config
from repro.hw.machine import MachineIdAllocator, reset_machine_ids


def test_default_names_and_addresses_are_ordinal():
    m0 = Machine(small_config())
    m1 = Machine(small_config())
    assert m0.name == "machine0"
    assert m1.name == "machine1"
    assert m0.nic.addr == "10.0.0.1"
    assert m1.nic.addr == "10.0.0.2"


def test_reset_makes_construction_order_reproducible():
    a = Machine(small_config())
    reset_machine_ids()
    b = Machine(small_config())
    # same ordinal twice: identity depends on order since the last reset,
    # never on how many machines the process built before it
    assert a.name == b.name == "machine0"
    assert a.nic.addr == b.nic.addr == "10.0.0.1"


def test_private_allocator_isolates_a_scenario():
    ids = MachineIdAllocator()
    s0 = Machine(small_config(), ids=ids)
    s1 = Machine(small_config(), ids=ids)
    assert (s0.name, s1.name) == ("machine0", "machine1")
    # the process-default allocator never saw those allocations
    d = Machine(small_config())
    assert d.name == "machine0"


def test_explicit_name_still_consumes_an_ordinal():
    named = Machine(small_config(), name="alpha")
    after = Machine(small_config())
    assert named.name == "alpha"
    # the NIC address is positional even when the name is not
    assert named.nic.addr == "10.0.0.1"
    assert after.name == "machine1"
    assert after.nic.addr == "10.0.0.2"


def test_allocator_reset_restarts_sequence():
    ids = MachineIdAllocator()
    assert [ids.allocate() for _ in range(3)] == [0, 1, 2]
    ids.reset()
    assert ids.allocate() == 0
