"""Devices: disk latency model, NIC + link, timer."""

import pytest

from repro.errors import DeviceError, HardwareError
from repro.hw.devices import BlockRequest, Packet
from repro.hw.interrupts import Idt, VEC_DISK, VEC_NET
from repro.hw.machine import Machine
from repro.params import small_config


def _install_idt(machine, log):
    idt = Idt("t")
    idt.set_gate(VEC_DISK, lambda c, v: log.append("disk"))
    idt.set_gate(VEC_NET, lambda c, v: log.append("net"))
    machine.boot_cpu.load_idt(idt)
    machine.intc.bind_line("sda", 0, VEC_DISK)
    machine.intc.bind_line("eth0", 0, VEC_NET)


def test_block_write_then_read(machine):
    log = []
    _install_idt(machine, log)
    w = BlockRequest(op="write", block=2000, data="payload")
    machine.disk.submit(w)
    machine.run_until_idle()
    assert w.done
    r = BlockRequest(op="read", block=2000)
    machine.disk.submit(r)
    machine.run_until_idle()
    assert r.result == "payload"
    assert log == ["disk", "disk"]


def test_block_out_of_range_rejected(machine):
    with pytest.raises(DeviceError):
        machine.disk.submit(BlockRequest(op="read", block=1 << 40))


def test_unknown_op_errors_at_completion(machine):
    log = []
    _install_idt(machine, log)
    machine.disk.submit(BlockRequest(op="trim", block=1))
    with pytest.raises(DeviceError):
        machine.run_until_idle()


def test_sequential_access_is_much_cheaper_than_seek(machine):
    log = []
    _install_idt(machine, log)

    def latency(block):
        t0 = machine.clock.cycles
        req = BlockRequest(op="write", block=block, data="x")
        machine.disk.submit(req)
        machine.run_until_idle()
        return machine.clock.cycles - t0

    far = latency(500_000)            # long seek from the start position
    near = latency(500_001)           # adjacent block: streams
    assert far > 10 * near


def test_sync_helpers_bypass_interrupts(machine):
    machine.disk.write_sync(5, "boot")
    assert machine.disk.read_sync(5) == "boot"


def test_nic_without_link_rejects_tx(machine):
    with pytest.raises(DeviceError):
        machine.nic.transmit(Packet("a", "b", "udp", 100))


def test_linked_machines_deliver_packets():
    a = Machine(small_config())
    b = Machine(small_config(), clock=a.clock)
    a.link_to(b)
    log = []
    idt = Idt("t")
    idt.set_gate(VEC_NET, lambda c, v: log.append("rx"))
    b.boot_cpu.load_idt(idt)
    b.intc.bind_line("eth0", 0, VEC_NET)
    a.nic.transmit(Packet(a.nic.addr, b.nic.addr, "udp", 1000, payload="hi"))
    b.run_until_idle()
    assert log == ["rx"]
    assert b.nic.rx_queue[0].payload == "hi"
    assert a.nic.tx_packets == 1 and b.nic.rx_packets == 1


def test_link_requires_shared_clock():
    a = Machine(small_config())
    b = Machine(small_config())  # different clock
    with pytest.raises(HardwareError):
        a.link_to(b)


def test_wire_backpressure_serializes_bulk_tx():
    """A burst of frames cannot finish faster than the wire rate."""
    a = Machine(small_config())
    b = Machine(small_config(), clock=a.clock)
    a.link_to(b)
    idt = Idt("t")
    idt.set_gate(VEC_NET, lambda c, v: None)
    b.boot_cpu.load_idt(idt)
    b.intc.bind_line("eth0", 0, VEC_NET)
    n, size = 50, 1024
    t0 = a.clock.cycles
    for i in range(n):
        a.nic.transmit(Packet(a.nic.addr, b.nic.addr, "udp", size, seq=i))
    b.run_until_idle()
    elapsed_ns = (a.clock.cycles - t0) * 1000 / a.config.cost.freq_mhz
    min_wire_ns = n * a.config.cost.net_wire_ns_per_kb  # 1 KiB each
    assert elapsed_ns >= min_wire_ns


def test_timer_ticks_at_configured_rate(machine):
    idt = Idt("t")
    ticks = []
    from repro.hw.interrupts import VEC_TIMER
    idt.set_gate(VEC_TIMER, lambda c, v: ticks.append(machine.clock.cycles))
    machine.boot_cpu.load_idt(idt)
    machine.intc.bind_line("timer", 0, VEC_TIMER)
    machine.timer.start()
    period = machine.timer.period_cycles
    for _ in range(3):
        machine.clock.cycles += period
        machine.poll()
    machine.timer.stop()
    assert len(ticks) == 3
    assert ticks[1] - ticks[0] >= period - 1


def test_timer_stop_prevents_further_ticks(machine):
    machine.timer.start()
    machine.timer.stop()
    machine.clock.cycles += machine.timer.period_cycles * 2
    machine.clock.run_due()
    assert machine.timer.ticks == 0
