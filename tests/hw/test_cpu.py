"""CPU: privilege enforcement, control registers, trap interception."""

import pytest

from repro.errors import GeneralProtectionFault
from repro.hw.cpu import PrivilegeLevel, SegmentDescriptor


def test_boots_at_pl0(cpu):
    assert cpu.pl == PrivilegeLevel.PL0


def test_rdtsc_tracks_clock(cpu):
    t0 = cpu.rdtsc()
    cpu.charge(12345)
    assert cpu.rdtsc() - t0 == 12345


def test_charge_advances_global_clock(machine):
    cpu = machine.boot_cpu
    before = machine.clock.cycles
    cpu.charge(100)
    assert machine.clock.cycles == before + 100


def test_write_cr3_requires_pl0(cpu):
    cpu.set_privilege(PrivilegeLevel.PL3)
    with pytest.raises(GeneralProtectionFault):
        cpu.write_cr3(5)


def test_write_cr3_flushes_tlb(cpu):
    cpu.tlb.fill(7, 42, True)
    cpu.write_cr3(5)
    assert cpu.cr3 == 5
    assert 7 not in cpu.tlb


def test_cli_sti_toggle_interrupt_flag(cpu):
    cpu.cli()
    assert not cpu.interrupts_enabled
    cpu.sti()
    assert cpu.interrupts_enabled


def test_cli_denied_at_user_level(cpu):
    cpu.set_privilege(PrivilegeLevel.PL3)
    with pytest.raises(GeneralProtectionFault):
        cpu.cli()


def test_privileged_op_executes_directly_at_pl0(cpu):
    before = cpu.rdtsc()
    cpu.privileged_op("wrmsr")
    assert cpu.rdtsc() - before == cpu.cost.cyc_privop_native


def test_privileged_op_faults_without_vmm_at_pl1(cpu):
    cpu.set_privilege(PrivilegeLevel.PL1)
    with pytest.raises(GeneralProtectionFault):
        cpu.privileged_op("wrmsr")


def test_privileged_op_traps_to_vmm_handler(cpu):
    """A de-privileged sensitive instruction must reach the installed trap
    handler — the interception §3.1 calls mandatory."""
    seen = []
    cpu.trap_handler = lambda c, what, args: seen.append((what, args))
    cpu.set_privilege(PrivilegeLevel.PL1)
    cpu.privileged_op("wrmsr", 1, 2)
    assert seen == [("wrmsr", (1, 2))]


def test_trap_charges_roundtrip_cost(cpu):
    cpu.trap_handler = lambda c, what, args: None
    cpu.set_privilege(PrivilegeLevel.PL1)
    t0 = cpu.rdtsc()
    cpu.privileged_op("wrmsr")
    assert cpu.rdtsc() - t0 == cpu.cost.cyc_trap_roundtrip


def test_load_gdt_and_descriptor_dpl(cpu):
    gdt = {1: SegmentDescriptor("kernel_cs", 0)}
    cpu.load_gdt(gdt)
    assert cpu.gdt[1].dpl == 0
    cpu.gdt[1].dpl = 1
    assert cpu.gdt[1].dpl == 1


def test_load_idt_requires_privilege(cpu):
    cpu.set_privilege(PrivilegeLevel.PL3)
    with pytest.raises(GeneralProtectionFault):
        cpu.load_idt(object())
