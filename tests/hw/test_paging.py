"""Two-level page tables: mapping, walks, permissions, teardown."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PageFault
from repro.hw.memory import PhysicalMemory
from repro.hw.paging import AddressSpace, Pte, vpn_split
from repro.params import PAGE_SIZE, PT_ENTRIES, PT_SPAN


@pytest.fixture
def mem():
    return PhysicalMemory(256)


@pytest.fixture
def aspace(mem):
    return AddressSpace(mem, owner=0)


def test_vpn_split():
    assert vpn_split(0) == (0, 0)
    assert vpn_split(PAGE_SIZE) == (0, 1)
    assert vpn_split(PT_SPAN) == (1, 0)
    assert vpn_split(PT_SPAN + 3 * PAGE_SIZE) == (1, 3)


def test_pgd_occupies_a_frame(mem, aspace):
    assert mem.owner_of(aspace.pgd_frame) == 0
    assert mem.frame_objects[aspace.pgd_frame] is aspace.pgd


def test_map_and_walk(mem, aspace):
    f = mem.alloc(0)
    aspace.set_pte(0x5000, Pte(frame=f))
    pte = aspace.walk(0x5000, write=False, user=True)
    assert pte.frame == f
    assert pte.accessed


def test_walk_sets_dirty_on_write(mem, aspace):
    f = mem.alloc(0)
    aspace.set_pte(0x5000, Pte(frame=f))
    pte = aspace.walk(0x5000, write=True, user=True)
    assert pte.dirty


def test_walk_unmapped_faults(aspace):
    with pytest.raises(PageFault) as e:
        aspace.walk(0x9000, write=False, user=True)
    assert e.value.vaddr == 0x9000


def test_walk_write_to_readonly_faults(mem, aspace):
    f = mem.alloc(0)
    aspace.set_pte(0x5000, Pte(frame=f, writable=False))
    aspace.walk(0x5000, write=False, user=True)  # read ok
    with pytest.raises(PageFault):
        aspace.walk(0x5000, write=True, user=True)


def test_user_access_to_kernel_page_faults(mem, aspace):
    f = mem.alloc(0)
    aspace.set_pte(0x5000, Pte(frame=f, user=False))
    with pytest.raises(PageFault):
        aspace.walk(0x5000, write=False, user=True)
    # supervisor access is fine
    assert aspace.walk(0x5000, write=False, user=False).frame == f


def test_not_present_faults(mem, aspace):
    f = mem.alloc(0)
    aspace.set_pte(0x5000, Pte(frame=f, present=False))
    with pytest.raises(PageFault):
        aspace.walk(0x5000, write=False, user=True)


def test_leaf_created_lazily(mem, aspace):
    assert aspace.num_pt_pages() == 1
    f = mem.alloc(0)
    aspace.set_pte(PT_SPAN * 2, Pte(frame=f))
    assert aspace.num_pt_pages() == 2
    leaf = aspace.leaf_for(PT_SPAN * 2)
    assert leaf.level == 1
    assert mem.frame_objects[leaf.frame] is leaf


def test_clear_pte(mem, aspace):
    f = mem.alloc(0)
    aspace.set_pte(0x5000, Pte(frame=f))
    removed = aspace.clear_pte(0x5000)
    assert removed.frame == f
    assert aspace.get_pte(0x5000) is None
    assert aspace.clear_pte(0x5000) is None  # idempotent


def test_mapped_enumeration(mem, aspace):
    frames = [mem.alloc(0) for _ in range(3)]
    addrs = [0x1000, 0x2000, PT_SPAN + 0x1000]
    for va, f in zip(addrs, frames):
        aspace.set_pte(va, Pte(frame=f))
    assert sorted(aspace.mapped_vaddrs()) == sorted(addrs)
    assert aspace.mapped_count() == 3
    assert sorted(aspace.mapped_frames()) == sorted(frames)


def test_destroy_frees_pt_frames_only(mem, aspace):
    data = mem.alloc(0)
    aspace.set_pte(0x1000, Pte(frame=data))
    free_before = mem.free_frames
    pt_pages = aspace.num_pt_pages()
    aspace.destroy()
    assert mem.free_frames == free_before + pt_pages
    assert mem.owner_of(data) == 0  # the mapped frame is untouched


def test_pte_clone_is_independent():
    p = Pte(frame=1, writable=True)
    q = p.clone()
    q.writable = False
    assert p.writable


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 63), st.booleans()),  # (page index, map/unmap)
    max_size=80))
def test_property_map_walk_consistency(ops):
    """After any map/unmap sequence, walks agree with the shadow model."""
    mem = PhysicalMemory(512)
    aspace = AddressSpace(mem, owner=0)
    shadow: dict[int, int] = {}
    pool = [mem.alloc(0) for _ in range(64)]
    for page, do_map in ops:
        va = page * PAGE_SIZE
        if do_map:
            aspace.set_pte(va, Pte(frame=pool[page]))
            shadow[va] = pool[page]
        else:
            aspace.clear_pte(va)
            shadow.pop(va, None)
    for va, frame in shadow.items():
        assert aspace.walk(va, write=False, user=True).frame == frame
    assert aspace.mapped_count() == len(shadow)
