"""TLB model: fills, lookups, FIFO eviction, flushes."""

from hypothesis import given, settings, strategies as st
import pytest

from repro.hw.tlb import Tlb


def test_miss_then_hit():
    tlb = Tlb(capacity=4)
    assert tlb.lookup(1) is None
    tlb.fill(1, 100, True)
    assert tlb.lookup(1) == (100, True)
    assert tlb.hits == 1 and tlb.misses == 1


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        Tlb(capacity=0)


def test_fifo_eviction():
    tlb = Tlb(capacity=2)
    tlb.fill(1, 10, True)
    tlb.fill(2, 20, True)
    tlb.fill(3, 30, True)  # evicts vpn 1
    assert tlb.lookup(1) is None
    assert tlb.lookup(2) == (20, True)
    assert tlb.lookup(3) == (30, True)


def test_refill_does_not_grow(capacity=2):
    tlb = Tlb(capacity=2)
    tlb.fill(1, 10, True)
    tlb.fill(1, 11, False)  # update in place
    assert len(tlb) == 1
    assert tlb.lookup(1) == (11, False)


def test_invalidate_single():
    tlb = Tlb()
    tlb.fill(1, 10, True)
    tlb.fill(2, 20, True)
    tlb.invalidate(1)
    assert tlb.lookup(1) is None
    assert tlb.lookup(2) == (20, True)


def test_flush_clears_everything_and_counts():
    tlb = Tlb()
    tlb.fill(1, 10, True)
    tlb.flush()
    assert len(tlb) == 0
    assert tlb.flushes == 1
    assert tlb.lookup(1) is None


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["fill", "inval", "flush"]),
                          st.integers(0, 15)), max_size=60))
def test_property_never_stale_after_invalidate(ops):
    """An invalidated or flushed translation is never returned."""
    tlb = Tlb(capacity=8)
    live: dict[int, int] = {}
    for op, vpn in ops:
        if op == "fill":
            tlb.fill(vpn, vpn * 7, True)
            live[vpn] = vpn * 7
        elif op == "inval":
            tlb.invalidate(vpn)
            live.pop(vpn, None)
        else:
            tlb.flush()
            live.clear()
    for vpn in range(16):
        hit = tlb.lookup(vpn)
        if hit is not None:
            assert vpn in live and hit[0] == live[vpn]
