"""Clock: cycle accounting and the timer event queue."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.clock import Clock


def test_advance_accumulates():
    c = Clock(freq_mhz=3000)
    c.advance(1500)
    c.advance(1500)
    assert c.cycles == 3000
    assert c.now_us() == pytest.approx(1.0)


def test_advance_rejects_negative():
    c = Clock()
    with pytest.raises(ValueError):
        c.advance(-1)


def test_now_ms_conversion():
    c = Clock(freq_mhz=3000)
    c.advance(3_000_000)
    assert c.now_ms() == pytest.approx(1.0)


def test_schedule_fires_only_after_deadline():
    c = Clock()
    fired = []
    c.schedule(100, lambda: fired.append("a"))
    assert c.run_due() == 0
    c.advance(99)
    assert c.run_due() == 0
    c.advance(1)
    assert c.run_due() == 1
    assert fired == ["a"]


def test_schedule_ordering_is_deadline_then_fifo():
    c = Clock()
    fired = []
    c.schedule(200, lambda: fired.append("late"))
    c.schedule(100, lambda: fired.append("early1"))
    c.schedule(100, lambda: fired.append("early2"))
    c.advance(300)
    c.run_due()
    assert fired == ["early1", "early2", "late"]


def test_schedule_zero_delay_fires_immediately_on_poll():
    c = Clock()
    fired = []
    c.schedule(0, lambda: fired.append(1))
    assert c.run_due() == 1


def test_schedule_negative_delay_clamped():
    c = Clock()
    fired = []
    c.schedule(-50, lambda: fired.append(1))
    assert c.run_due() == 1


def test_next_deadline():
    c = Clock()
    assert c.next_deadline() is None
    c.schedule(500, lambda: None)
    c.schedule(100, lambda: None)
    assert c.next_deadline() == 100


def test_drain_until_idle_advances_time_to_deadlines():
    c = Clock()
    order = []
    c.schedule(1000, lambda: order.append(c.cycles))
    c.schedule(5000, lambda: order.append(c.cycles))
    ran = c.drain_until_idle()
    assert ran == 2
    assert order == [1000, 5000]
    assert c.cycles == 5000


def test_drain_until_idle_handles_chained_events():
    c = Clock()
    fired = []

    def first():
        fired.append("first")
        c.schedule(100, lambda: fired.append("second"))

    c.schedule(10, first)
    c.drain_until_idle()
    assert fired == ["first", "second"]


def test_schedule_us():
    c = Clock(freq_mhz=3000)
    fired = []
    c.schedule_us(1.0, lambda: fired.append(1))
    c.advance(2999)
    assert c.run_due() == 0
    c.advance(1)
    assert c.run_due() == 1


# ----------------------------------------------------------------------
# TimerHandle: cancellation and one-shot semantics
# ----------------------------------------------------------------------

def test_schedule_returns_pending_handle():
    c = Clock()
    h = c.schedule(100, lambda: None)
    assert h.pending and not h.fired and not h.cancelled
    assert h.deadline == 100


def test_cancelled_handle_never_fires():
    c = Clock()
    fired = []
    h = c.schedule(100, lambda: fired.append(1))
    assert h.cancel() is True
    c.advance(200)
    assert c.run_due() == 0
    assert fired == []
    assert h.cancelled and not h.fired


def test_cancel_after_fire_reports_false():
    c = Clock()
    h = c.schedule(10, lambda: None)
    c.advance(10)
    c.run_due()
    assert h.fired
    assert h.cancel() is False


def test_double_cancel_reports_false():
    c = Clock()
    h = c.schedule(10, lambda: None)
    assert h.cancel() is True
    assert h.cancel() is False


def test_cancelled_head_does_not_mask_later_events():
    c = Clock()
    fired = []
    early = c.schedule(50, lambda: fired.append("early"))
    c.schedule(100, lambda: fired.append("late"))
    early.cancel()
    assert c.next_deadline() == 100  # pruned past the cancelled head
    c.advance(100)
    c.run_due()
    assert fired == ["late"]


def test_peek_returns_earliest_pending_without_firing():
    c = Clock()
    fired = []
    c.schedule(200, lambda: fired.append("late"))
    h = c.schedule(100, lambda: fired.append("early"))
    assert c.peek() is h
    assert fired == []


def test_fire_targets_one_handle_and_advances_time():
    c = Clock()
    fired = []
    c.schedule(50, lambda: fired.append("other"))
    h = c.schedule(300, lambda: fired.append("mine"))
    assert c.fire(h) is True
    # only the targeted handle ran, even though "other" was due first
    assert fired == ["mine"]
    assert c.cycles == 300
    assert c.fire(h) is False  # one-shot
    c.run_due()
    assert fired == ["mine", "other"]


def test_event_scheduled_from_inside_event_respects_deadline():
    c = Clock()
    fired = []

    def outer():
        fired.append(("outer", c.cycles))
        c.schedule(100, lambda: fired.append(("inner", c.cycles)))

    c.schedule(10, outer)
    c.advance(10)
    assert c.run_due() == 1  # inner deadline (110) not yet reached
    c.advance(100)
    assert c.run_due() == 1
    assert fired == [("outer", 10), ("inner", 110)]


def test_zero_delay_event_from_inside_event_fires_same_poll():
    c = Clock()
    fired = []
    c.schedule(10, lambda: c.schedule(0, lambda: fired.append(1)))
    c.advance(10)
    assert c.run_due() == 2  # chained event is due at the same cycle
    assert fired == [1]


# ----------------------------------------------------------------------
# ordering properties: (deadline, seq) is the whole contract
# ----------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(delays=st.lists(st.integers(min_value=0, max_value=1000),
                       min_size=1, max_size=30))
def test_firing_order_is_deadline_then_fifo(delays):
    c = Clock()
    fired = []
    for i, d in enumerate(delays):
        c.schedule(d, lambda i=i: fired.append(i))
    c.advance(1001)
    assert c.run_due() == len(delays)
    # stable sort by deadline == (deadline, schedule order)
    expect = [i for i, _ in sorted(enumerate(delays), key=lambda p: p[1])]
    assert fired == expect


@settings(max_examples=60, deadline=None)
@given(delays=st.lists(st.integers(min_value=0, max_value=500),
                       min_size=1, max_size=20),
       cancel_mask=st.lists(st.booleans(), min_size=20, max_size=20))
def test_cancellation_preserves_order_of_survivors(delays, cancel_mask):
    c = Clock()
    fired = []
    handles = [c.schedule(d, lambda i=i: fired.append(i))
               for i, d in enumerate(delays)]
    for h, dead in zip(handles, cancel_mask):
        if dead:
            h.cancel()
    c.advance(501)
    c.run_due()
    expect = [i for i, _ in sorted(enumerate(delays), key=lambda p: p[1])
              if not cancel_mask[i]]
    assert fired == expect


@settings(max_examples=40, deadline=None)
@given(plan=st.lists(st.tuples(st.integers(min_value=0, max_value=300),
                               st.integers(min_value=0, max_value=300)),
                     min_size=1, max_size=12))
def test_events_scheduled_from_inside_events_keep_global_order(plan):
    """Each (outer, extra) pair schedules a child event from inside its
    parent; every firing timestamp must be the event's own deadline and
    the global firing sequence must be monotone in time."""
    c = Clock()
    fired = []

    def make_parent(outer, extra):
        def parent():
            fired.append(("p", outer, c.cycles))
            c.schedule(extra, lambda: fired.append(
                ("c", outer + extra, c.cycles)))
        return parent

    for outer, extra in plan:
        c.schedule(outer, make_parent(outer, extra))
    c.drain_until_idle()
    assert len(fired) == 2 * len(plan)
    for _, deadline, at in fired:
        assert at == deadline
    times = [at for _, _, at in fired]
    assert times == sorted(times)
