"""Clock: cycle accounting and the timer event queue."""

import pytest

from repro.hw.clock import Clock


def test_advance_accumulates():
    c = Clock(freq_mhz=3000)
    c.advance(1500)
    c.advance(1500)
    assert c.cycles == 3000
    assert c.now_us() == pytest.approx(1.0)


def test_advance_rejects_negative():
    c = Clock()
    with pytest.raises(ValueError):
        c.advance(-1)


def test_now_ms_conversion():
    c = Clock(freq_mhz=3000)
    c.advance(3_000_000)
    assert c.now_ms() == pytest.approx(1.0)


def test_schedule_fires_only_after_deadline():
    c = Clock()
    fired = []
    c.schedule(100, lambda: fired.append("a"))
    assert c.run_due() == 0
    c.advance(99)
    assert c.run_due() == 0
    c.advance(1)
    assert c.run_due() == 1
    assert fired == ["a"]


def test_schedule_ordering_is_deadline_then_fifo():
    c = Clock()
    fired = []
    c.schedule(200, lambda: fired.append("late"))
    c.schedule(100, lambda: fired.append("early1"))
    c.schedule(100, lambda: fired.append("early2"))
    c.advance(300)
    c.run_due()
    assert fired == ["early1", "early2", "late"]


def test_schedule_zero_delay_fires_immediately_on_poll():
    c = Clock()
    fired = []
    c.schedule(0, lambda: fired.append(1))
    assert c.run_due() == 1


def test_schedule_negative_delay_clamped():
    c = Clock()
    fired = []
    c.schedule(-50, lambda: fired.append(1))
    assert c.run_due() == 1


def test_next_deadline():
    c = Clock()
    assert c.next_deadline() is None
    c.schedule(500, lambda: None)
    c.schedule(100, lambda: None)
    assert c.next_deadline() == 100


def test_drain_until_idle_advances_time_to_deadlines():
    c = Clock()
    order = []
    c.schedule(1000, lambda: order.append(c.cycles))
    c.schedule(5000, lambda: order.append(c.cycles))
    ran = c.drain_until_idle()
    assert ran == 2
    assert order == [1000, 5000]
    assert c.cycles == 5000


def test_drain_until_idle_handles_chained_events():
    c = Clock()
    fired = []

    def first():
        fired.append("first")
        c.schedule(100, lambda: fired.append("second"))

    c.schedule(10, first)
    c.drain_until_idle()
    assert fired == ["first", "second"]


def test_schedule_us():
    c = Clock(freq_mhz=3000)
    fired = []
    c.schedule_us(1.0, lambda: fired.append(1))
    c.advance(2999)
    assert c.run_due() == 0
    c.advance(1)
    assert c.run_due() == 1
