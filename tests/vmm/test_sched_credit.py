"""Credit scheduler: weighted shares, block/wake, priority demotion."""

import pytest

from repro.errors import VMMError
from repro.vmm.domain import Domain
from repro.vmm.sched_credit import (CREDITS_PER_PERIOD, CYCLES_PER_CREDIT,
                                    CreditScheduler)


def _dom(domain_id, vcpus=1):
    return Domain(domain_id, f"d{domain_id}", num_vcpus=vcpus)


def test_pick_round_robin_within_priority():
    sched = CreditScheduler()
    a, b = _dom(0), _dom(1)
    sched.add_domain(a)
    sched.add_domain(b)
    picks = [sched.pick_next().domain_id for _ in range(4)]
    assert sorted(picks[:2]) == [0, 1]  # both get a turn
    assert picks[0] != picks[1]


def test_weight_must_be_positive():
    sched = CreditScheduler()
    with pytest.raises(VMMError):
        sched.add_domain(_dom(0), weight=0)


def test_exhausted_vcpu_demoted_to_over():
    sched = CreditScheduler()
    a, b = _dom(0), _dom(1)
    sched.add_domain(a)
    sched.add_domain(b)
    va = a.vcpus[0]
    sched.charge_runtime(va, (CREDITS_PER_PERIOD + 1) * CYCLES_PER_CREDIT)
    assert va.credits <= 0
    # b (UNDER) must now always be picked over a (OVER)
    picks = {sched.pick_next().domain_id for _ in range(4)}
    assert picks == {1}


def test_accounting_tick_promotes_back():
    sched = CreditScheduler()
    a = _dom(0)
    sched.add_domain(a)
    va = a.vcpus[0]
    sched.charge_runtime(va, (CREDITS_PER_PERIOD + 1) * CYCLES_PER_CREDIT)
    assert sched.pick_next() is va  # still runnable, from OVER queue
    sched.accounting_tick()
    assert va.credits > 0
    assert va in sched._under


def test_block_and_wake():
    sched = CreditScheduler()
    a, b = _dom(0), _dom(1)
    sched.add_domain(a)
    sched.add_domain(b)
    sched.block(a.vcpus[0])
    picks = {sched.pick_next().domain_id for _ in range(3)}
    assert picks == {1}
    sched.wake(a.vcpus[0])
    picks = {sched.pick_next().domain_id for _ in range(4)}
    assert 0 in picks


def test_remove_domain():
    sched = CreditScheduler()
    a, b = _dom(0), _dom(1)
    sched.add_domain(a)
    sched.add_domain(b)
    sched.remove_domain(a)
    assert all(sched.pick_next().domain_id == 1 for _ in range(3))


def test_pick_none_when_empty():
    assert CreditScheduler().pick_next() is None


def test_runtime_share_tracks_weights():
    """Over many periods, runtime splits roughly by weight (2:1)."""
    sched = CreditScheduler()
    a, b = _dom(0), _dom(1)
    sched.add_domain(a, weight=2.0)
    sched.add_domain(b, weight=1.0)
    for i in range(300):
        v = sched.pick_next()
        # a heavier domain holds UNDER status longer between accounting
        # ticks, so it accumulates more runtime
        sched.charge_runtime(v, 30 * CYCLES_PER_CREDIT)
        if i % 50 == 49:
            sched.accounting_tick()
    share = sched.runtime_share()
    assert share[0] > share[1]


def test_world_switch_counter():
    sched = CreditScheduler()
    a, b = _dom(0), _dom(1)
    sched.add_domain(a)
    sched.add_domain(b)
    sched.pick_next()
    sched.pick_next()
    assert sched.world_switches >= 2
