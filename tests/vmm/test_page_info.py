"""Page type/count tracking: validation, pinning, isolation, recompute."""

import pytest

from repro.errors import PageValidationError
from repro.hw.memory import PhysicalMemory
from repro.hw.paging import AddressSpace, Pte
from repro.vmm.page_info import PageInfoTable, PageType


@pytest.fixture
def env(machine):
    mem = machine.memory
    table = PageInfoTable(mem)
    aspace = AddressSpace(mem, owner=0)
    return machine.boot_cpu, mem, table, aspace


def test_validate_pgd_types_pages(env):
    cpu, mem, table, aspace = env
    data = mem.alloc(0)
    aspace.set_pte(0x1000, Pte(frame=data))
    table.validate_pgd(cpu, aspace, domain_id=0)
    assert table.type[aspace.pgd_frame] == PageType.L2_PAGETABLE
    leaf = aspace.leaf_for(0x1000)
    assert table.type[leaf.frame] == PageType.L1_PAGETABLE
    assert table.type[data] == PageType.WRITABLE
    assert table.type_count[data] == 1
    assert aspace.pgd_frame in table.pinned


def test_validation_rejects_foreign_frames(env):
    """A domain can never get a mapping of another domain's frame
    validated — the isolation invariant."""
    cpu, mem, table, aspace = env
    foreign = mem.alloc(99)  # owned by someone else
    aspace.set_pte(0x1000, Pte(frame=foreign))
    with pytest.raises(PageValidationError):
        table.validate_pgd(cpu, aspace, domain_id=0)


def test_validation_rejects_writable_mapping_of_pt_page(env):
    cpu, mem, table, aspace = env
    data = mem.alloc(0)
    aspace.set_pte(0x1000, Pte(frame=data))
    table.validate_pgd(cpu, aspace, domain_id=0)
    leaf_frame = aspace.leaf_for(0x1000).frame
    # second address space tries to map the first one's leaf writable
    evil = AddressSpace(mem, owner=0)
    evil.set_pte(0x2000, Pte(frame=leaf_frame, writable=True))
    with pytest.raises(PageValidationError):
        table.validate_pgd(cpu, evil, domain_id=0)


def test_readonly_mapping_of_pt_page_is_fine(env):
    cpu, mem, table, aspace = env
    data = mem.alloc(0)
    aspace.set_pte(0x1000, Pte(frame=data))
    table.validate_pgd(cpu, aspace, domain_id=0)
    leaf_frame = aspace.leaf_for(0x1000).frame
    reader = AddressSpace(mem, owner=0)
    reader.set_pte(0x2000, Pte(frame=leaf_frame, writable=False))
    table.validate_pgd(cpu, reader, domain_id=0)  # no exception


def test_pte_write_validation(env):
    cpu, mem, table, aspace = env
    data = mem.alloc(0)
    aspace.set_pte(0x1000, Pte(frame=data))
    table.validate_pgd(cpu, aspace, domain_id=0)
    new_frame = mem.alloc(0)
    table.validate_pte_write(cpu, Pte(frame=new_frame), domain_id=0)
    assert table.type[new_frame] == PageType.WRITABLE
    foreign = mem.alloc(42)
    with pytest.raises(PageValidationError):
        table.validate_pte_write(cpu, Pte(frame=foreign), domain_id=0)


def test_pte_write_cannot_alias_pt_page(env):
    cpu, mem, table, aspace = env
    data = mem.alloc(0)
    aspace.set_pte(0x1000, Pte(frame=data))
    table.validate_pgd(cpu, aspace, domain_id=0)
    leaf_frame = aspace.leaf_for(0x1000).frame
    with pytest.raises(PageValidationError):
        table.validate_pte_write(cpu, Pte(frame=leaf_frame, writable=True),
                                 domain_id=0)


def test_unpin_clears_types(env):
    cpu, mem, table, aspace = env
    data = mem.alloc(0)
    aspace.set_pte(0x1000, Pte(frame=data))
    table.validate_pgd(cpu, aspace, domain_id=0)
    table.unpin_aspace(cpu, aspace)
    assert table.type[aspace.pgd_frame] == PageType.NONE
    assert table.type[data] == PageType.NONE
    assert aspace.pgd_frame not in table.pinned


def test_account_pte_clear_releases_type(env):
    cpu, mem, table, aspace = env
    frame = mem.alloc(0)
    pte = Pte(frame=frame)
    table.validate_pte_write(cpu, pte, domain_id=0)
    table.account_pte_clear(cpu, pte)
    assert table.type[frame] == PageType.NONE
    assert table.type_count[frame] == 0


def test_shared_frame_counts(env):
    cpu, mem, table, aspace = env
    frame = mem.alloc(0)
    a = Pte(frame=frame)
    b = Pte(frame=frame)
    table.validate_pte_write(cpu, a, domain_id=0)
    table.validate_pte_write(cpu, b, domain_id=0)
    assert table.type_count[frame] == 2
    table.account_pte_clear(cpu, a)
    assert table.type[frame] == PageType.WRITABLE  # still mapped once
    table.account_pte_clear(cpu, b)
    assert table.type[frame] == PageType.NONE


def test_recompute_resets_then_rebuilds(env):
    cpu, mem, table, aspace = env
    data = mem.alloc(0)
    aspace.set_pte(0x1000, Pte(frame=data))
    stale = mem.alloc(0)
    table.type[stale] = PageType.L1_PAGETABLE  # garbage from a prior epoch
    scanned = table.recompute(cpu, [aspace], domain_id=0)
    assert scanned == aspace.num_pt_pages()
    assert table.type[stale] == PageType.NONE
    assert table.type[data] == PageType.WRITABLE


def test_recompute_charges_full_width_scans(env):
    """Cost accounting: recompute must charge per PT slot, which is what
    dominates the native->virtual switch (§7.4)."""
    cpu, mem, table, aspace = env
    data = mem.alloc(0)
    aspace.set_pte(0x1000, Pte(frame=data))
    t0 = cpu.rdtsc()
    table.recompute(cpu, [aspace], domain_id=0)
    cost = cpu.rdtsc() - t0
    from repro.params import PT_ENTRIES
    assert cost >= 2 * PT_ENTRIES * cpu.cost.cyc_pte_validate  # pgd + leaf


def test_retype_in_use_rejected(env):
    cpu, mem, table, aspace = env
    frame = mem.alloc(0)
    table._set_type(frame, PageType.L1_PAGETABLE)
    with pytest.raises(PageValidationError):
        table._set_type(frame, PageType.L2_PAGETABLE)


def test_is_pt_frame(env):
    cpu, mem, table, aspace = env
    table.track_new_pt_page(aspace.pgd_frame, level=2)
    assert table.is_pt_frame(aspace.pgd_frame)
    assert not table.is_pt_frame(mem.alloc(0))
