"""Time-shared domains: the credit scheduler driving real workloads."""

import pytest

from repro import Machine, small_config
from repro.core.virtual_vo import VirtualVO
from repro.errors import VMMError
from repro.guestos.kernel import Kernel
from repro.vmm.hypervisor import Hypervisor
from repro.vmm.timeshare import TimeSharedRunner


@pytest.fixture
def host():
    """An active VMM hosting two compute guests with weights 2:1."""
    machine = Machine(small_config(mem_kb=65536))
    vmm = Hypervisor(machine)
    vmm.warm_up()
    dom_a = vmm.create_domain("heavy", domain_id=0, is_driver_domain=True,
                              weight=2.0)
    dom_b = vmm.create_domain("light", domain_id=1, weight=1.0)
    vmm.activate()
    kernels = {}
    for dom in (dom_a, dom_b):
        k = Kernel(machine, VirtualVO(machine, vmm, dom),
                   owner_id=dom.domain_id, name=dom.name,
                   has_devices=dom.is_driver_domain)
        dom.guest = k
        k.boot(image_pages=8)
        kernels[dom.domain_id] = k
    return machine, vmm, kernels


def _compute_job(kernel, cpu, total_steps):
    state = {"left": total_steps}

    def step() -> bool:
        kernel.user_compute(cpu, 100.0)  # one 100 µs quantum
        state["left"] -= 1
        return state["left"] > 0
    return step


def test_runner_requires_warm_vmm(machine):
    with pytest.raises(VMMError):
        TimeSharedRunner(Hypervisor(machine), machine.boot_cpu)


def test_unknown_domain_rejected(host):
    machine, vmm, kernels = host
    runner = TimeSharedRunner(vmm, machine.boot_cpu)
    with pytest.raises(VMMError):
        runner.add_job(99, lambda: False)


def test_both_jobs_complete(host):
    machine, vmm, kernels = host
    cpu = machine.boot_cpu
    runner = TimeSharedRunner(vmm, cpu)
    a = runner.add_job(0, _compute_job(kernels[0], cpu, 30))
    b = runner.add_job(1, _compute_job(kernels[1], cpu, 30))
    report = runner.run()
    assert a.finished and b.finished
    assert report.quanta_per_domain == {0: 30, 1: 30}
    assert report.world_switches >= 2


def test_weighted_fairness_while_competing(host):
    """While both domains want the CPU, the heavy (weight 2) domain gets
    roughly twice the runtime — the credit scheduler's contract."""
    machine, vmm, kernels = host
    cpu = machine.boot_cpu
    runner = TimeSharedRunner(vmm, cpu)
    # long jobs so neither finishes within the measured window
    runner.add_job(0, _compute_job(kernels[0], cpu, 100_000))
    runner.add_job(1, _compute_job(kernels[1], cpu, 100_000))
    report = runner.run(max_quanta=600)
    share_heavy = report.runtime_share[0]
    share_light = report.runtime_share[1]
    assert share_heavy > share_light
    ratio = share_heavy / share_light
    assert 1.3 < ratio < 3.5  # ~2.0 with scheduling granularity slack


def test_finished_domain_releases_cpu(host):
    """Once the light domain finishes, the heavy one gets everything."""
    machine, vmm, kernels = host
    cpu = machine.boot_cpu
    runner = TimeSharedRunner(vmm, cpu)
    runner.add_job(0, _compute_job(kernels[0], cpu, 200))
    runner.add_job(1, _compute_job(kernels[1], cpu, 10))
    report = runner.run()
    assert report.quanta_per_domain[0] == 200
    assert report.quanta_per_domain[1] == 10


def test_world_switches_are_charged(host):
    machine, vmm, kernels = host
    cpu = machine.boot_cpu
    runner = TimeSharedRunner(vmm, cpu)
    runner.add_job(0, _compute_job(kernels[0], cpu, 5))
    runner.add_job(1, _compute_job(kernels[1], cpu, 5))
    t0 = cpu.rdtsc()
    report = runner.run()
    elapsed = cpu.rdtsc() - t0
    # at minimum: the compute itself plus a sched cost per world switch
    assert elapsed >= 10 * 100 * 3000
    assert report.world_switches > 0


def test_syscall_workload_under_timesharing(host):
    """Jobs that enter their kernels (not just burn CPU) schedule fine."""
    machine, vmm, kernels = host
    cpu = machine.boot_cpu
    runner = TimeSharedRunner(vmm, cpu)

    def fs_job(kernel, n):
        state = {"i": 0}

        def step() -> bool:
            fd = kernel.syscall(cpu, "open", f"/ts{state['i']}", True)
            kernel.syscall(cpu, "write", fd, "x", 512)
            kernel.syscall(cpu, "close", fd)
            state["i"] += 1
            return state["i"] < n
        return step

    runner.add_job(0, fs_job(kernels[0], 8))
    runner.add_job(1, _compute_job(kernels[1], cpu, 8))
    report = runner.run()
    assert kernels[0].fs.exists("/ts0")
    assert report.quanta_per_domain[0] == 8
