"""Fuzzing the hypercall interface.

A guest kernel is untrusted input to the VMM: arbitrary (including
nonsensical or hostile) hypercall sequences may be rejected, but must
never corrupt the VMM's page-info invariants or leak access to foreign
frames.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Machine, small_config
from repro.errors import ReproError
from repro.hw.paging import AddressSpace, Pte
from repro.vmm.hypervisor import Hypervisor
from repro.vmm.page_info import PageType

OPS = st.lists(
    st.tuples(
        st.sampled_from(["map", "unmap", "pin", "unpin", "baseptr",
                         "map_foreign", "map_pt_writable", "flush"]),
        st.integers(0, 7),     # which vaddr slot
        st.integers(0, 3),     # which frame from the pool
    ),
    max_size=40)


def _build():
    machine = Machine(small_config())
    vmm = Hypervisor(machine)
    vmm.warm_up()
    dom = vmm.create_domain("fuzz", domain_id=0, is_driver_domain=True)
    vmm.activate()
    aspace = AddressSpace(machine.memory, owner=0)
    dom.register_aspace(aspace)
    mine = [machine.memory.alloc(0) for _ in range(4)]
    foreign = [machine.memory.alloc(9) for _ in range(4)]
    return machine, vmm, dom, aspace, mine, foreign


def _check_invariants(vmm, machine, foreign):
    pi = vmm.page_info
    # counts never negative
    assert min(pi.type_count) >= 0, "negative type count"
    assert min(pi.ref_count) >= 0, "negative ref count"
    # no foreign frame ever became guest-visible through this domain
    for f in foreign:
        assert pi.type[f] == PageType.NONE
        assert pi.type_count[f] == 0
    # pinned frames are typed as page tables
    for frame in pi.pinned:
        assert pi.is_pt_frame(frame), f"pinned frame {frame} not PT-typed"


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(OPS)
def test_fuzz_hypercalls_never_corrupt_page_info(ops):
    machine, vmm, dom, aspace, mine, foreign = _build()
    cpu = machine.boot_cpu
    for op, slot, fidx in ops:
        vaddr = 0x1000_0000 + slot * 4096
        try:
            if op == "map":
                vmm.hypercall(cpu, dom, "update_va_mapping", aspace, vaddr,
                              Pte(frame=mine[fidx]))
            elif op == "unmap":
                vmm.hypercall(cpu, dom, "update_va_mapping", aspace, vaddr,
                              None)
            elif op == "pin":
                vmm.hypercall(cpu, dom, "mmuext_op", "pin_table", aspace)
            elif op == "unpin":
                vmm.hypercall(cpu, dom, "mmuext_op", "unpin_table", aspace)
            elif op == "baseptr":
                vmm.hypercall(cpu, dom, "mmuext_op", "new_baseptr", aspace)
            elif op == "map_foreign":     # hostile: foreign frame
                vmm.hypercall(cpu, dom, "update_va_mapping", aspace, vaddr,
                              Pte(frame=foreign[fidx]))
            elif op == "map_pt_writable":  # hostile: own PT, writable
                vmm.hypercall(cpu, dom, "update_va_mapping", aspace, vaddr,
                              Pte(frame=aspace.pgd_frame, writable=True))
            elif op == "flush":
                vmm.hypercall(cpu, dom, "mmuext_op", "tlb_flush_local")
        except ReproError:
            pass  # rejection is fine; corruption is not
        _check_invariants(vmm, machine, foreign)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(OPS)
def test_fuzz_then_recompute_is_consistent(ops):
    """After any fuzz sequence, a fresh recompute over the surviving
    structures must succeed (no wedged state)."""
    machine, vmm, dom, aspace, mine, foreign = _build()
    cpu = machine.boot_cpu
    for op, slot, fidx in ops:
        vaddr = 0x1000_0000 + slot * 4096
        try:
            if op == "map":
                vmm.hypercall(cpu, dom, "update_va_mapping", aspace, vaddr,
                              Pte(frame=mine[fidx]))
            elif op == "unmap":
                vmm.hypercall(cpu, dom, "update_va_mapping", aspace, vaddr,
                              None)
            elif op == "pin":
                vmm.hypercall(cpu, dom, "mmuext_op", "pin_table", aspace)
            elif op == "unpin":
                vmm.hypercall(cpu, dom, "mmuext_op", "unpin_table", aspace)
        except ReproError:
            pass
    vmm.page_info.recompute(cpu, [aspace], dom.domain_id)
    assert aspace.pgd_frame in vmm.page_info.pinned
