"""Balloon split-driver datapath: inflate/deflate, surrender safety,
dirty-root accounting, the wedged-ring fault site, and the refcount-site
rename compat."""

import pytest

from repro import faults
from repro.core.recovery import RecoveryManager
from repro.errors import DomainError, PageValidationError
from repro.vmm.backend import BalloonBack, BalloonRingEntry
from repro.watchdog import Watchdog


@pytest.fixture
def hosted(mercury, cpu):
    """Attached Mercury hosting one ballooned guest."""
    mercury.attach(cpu)
    guest = mercury.host_guest(name="ball-guest", image_pages=8,
                               mem_pages=64, mem_floor=16)
    front, back = mercury.balloons[guest.owner_id]
    dom = mercury.vmm.domains[guest.owner_id]
    return mercury, guest, front, back, dom


def test_reservation_established(hosted):
    mercury, guest, front, back, dom = hosted
    mem = mercury.machine.memory
    assert dom.mem_pages == 64
    assert dom.mem_floor == 16
    assert len(mem.frames_owned_by(guest.owner_id)) == 64
    assert len(front.pool) > 0


def test_inflate_surrenders_to_host_pool(hosted, cpu):
    mercury, guest, front, back, dom = hosted
    mem = mercury.machine.memory
    free0 = mem.free_frames
    owned0 = len(mem.frames_owned_by(guest.owner_id))
    back.set_target(cpu, 48)
    assert dom.mem_pages == 48
    assert len(mem.frames_owned_by(guest.owner_id)) == owned0 - 16
    assert mem.free_frames == free0 + 16
    assert back.inflated == 16


def test_deflate_regrows_reservation(hosted, cpu):
    mercury, guest, front, back, dom = hosted
    pool0 = len(front.pool)
    back.set_target(cpu, 80)
    assert dom.mem_pages == 80
    assert len(front.pool) == pool0 + 16
    assert back.deflated == 16
    assert len(mercury.machine.memory.frames_owned_by(guest.owner_id)) == 80


def test_inflate_deflate_round_trip_conserves(hosted, cpu):
    mercury, guest, front, back, dom = hosted
    mem = mercury.machine.memory
    owned0 = len(mem.frames_owned_by(guest.owner_id))
    for _ in range(3):
        back.set_target(cpu, dom.mem_pages - 16)
        back.set_target(cpu, dom.mem_pages + 16)
    assert dom.mem_pages == 64
    assert len(mem.frames_owned_by(guest.owner_id)) == owned0


def test_surrender_refuses_mapped_and_pt_frames(hosted, cpu):
    mercury, guest, front, back, dom = hosted
    pi = mercury.vmm.page_info
    # map some pool frames into the guest init task; those frames (and
    # the page tables backing them) must be refused by release_frame
    init = guest.scheduler.current
    front.map_pool_frames(cpu, init, 4)
    mapped = next(iter(front._rmap))
    with pytest.raises(PageValidationError):
        pi.release_frame(mapped)
    pgd = init.aspace.pgd.frame
    with pytest.raises(PageValidationError):
        pi.release_frame(pgd)


def test_balloon_ledger_never_negative(hosted):
    mercury, guest, front, back, dom = hosted
    with pytest.raises(DomainError):
        dom.balloon_adjust(-(dom.mem_pages + 1))


def test_below_floor_flag(hosted):
    mercury, guest, front, back, dom = hosted
    assert not dom.below_floor
    dom.mem_pages = dom.mem_floor - 1
    assert dom.below_floor
    dom.mem_pages = 0  # an unballooned domain has no floor semantics
    assert not dom.below_floor


def test_map_pool_frames_dirties_root(mercury, cpu):
    """Dom0 ballooning in native mode must mark the receiving root dirty
    so the next attach revalidates exactly that root."""
    mercury.attach(cpu)
    front, back = mercury.connect_balloon()
    dom0 = mercury.domain
    back.set_target(cpu, dom0.mem_pages + 16)  # stock the pool
    mercury.detach(cpu)
    marks0 = mercury.mmu_log.balloon_marks
    task = mercury.kernel.scheduler.current
    front.map_pool_frames(cpu, task, 4)
    assert mercury.mmu_log.balloon_marks == marks0 + 1
    assert task.aspace.pgd.frame in mercury.mmu_log.dirty


def test_hypervisor_driven_victims_fault_back(hosted, cpu):
    mercury, guest, front, back, dom = hosted
    init = guest.scheduler.current
    front.map_pool_frames(cpu, init, 8)
    targets = sorted(vaddr for _t, vaddr in front._rmap.values())
    victims = tuple(sorted(front.resident_frames, reverse=True)[:8])
    back.set_target(cpu, dom.mem_pages - 8, victims=victims)
    assert dom.mem_pages == 56
    assert front.victim_unmaps > 0
    faults0 = guest.vmem.minor_faults
    for vaddr in targets:
        guest.vmem.access(cpu, init, vaddr, write=True)
    assert guest.vmem.minor_faults - faults0 == front.victim_unmaps


def test_refcount_site_rename_compat():
    assert faults.VMM_REFCOUNT_BALLOON == faults.VMM_REFCOUNT_RUNAWAY
    assert faults.VMM_REFCOUNT_RUNAWAY == "vmm.refcount-runaway"
    assert faults.site(faults.VMM_REFCOUNT_BALLOON).during_switch is False
    assert faults.REFCOUNT_BALLOON_AMOUNT == faults.REFCOUNT_RUNAWAY_AMOUNT


def test_balloon_wedge_requires_backend(mercury, cpu):
    mercury.attach(cpu)
    from repro.errors import VMMError
    with pytest.raises(VMMError):
        faults.inject_vmm_fault(faults.VMM_BALLOON_WEDGED, mercury)


def test_wedged_doorbell_detected_and_recovered(hosted, cpu):
    """The balloon fault site: a lost doorbell is structural, detected in
    one scan, and cleared by the microreboot (fresh rings)."""
    mercury, guest, front, back, dom = hosted
    watchdog = Watchdog(mercury, suspect_scans=1)
    manager = RecoveryManager(mercury, watchdog)
    assert watchdog.scan(cpu) is None
    what = faults.inject_vmm_fault(faults.VMM_BALLOON_WEDGED, mercury)
    assert "doorbell lost" in what
    verdict = watchdog.scan(cpu)
    assert verdict is not None and verdict.invariant == "balloon-ring"
    record = manager.recover(verdict, cpu=cpu)
    assert record.success
    assert watchdog.scan(cpu) is None


def test_unconsumed_extents_need_double_observation(hosted, cpu):
    """Requests sitting in the ring are only suspicious if they persist:
    one scan mid-submit must not fire, two must."""
    mercury, guest, front, back, dom = hosted
    watchdog = Watchdog(mercury, suspect_scans=2)
    # wedge the backend silently: kill its poll, then submit a deflate
    back._in_poll = True
    entry_count0 = back.requests_handled
    front.ring.push_request(BalloonRingEntry(op="deflate", count=4))
    front.ring.push_requests_and_check_notify()
    back._in_poll = False
    assert watchdog.scan(cpu) is None  # first observation: suspect only
    verdict = watchdog.scan(cpu)
    assert verdict is not None and verdict.invariant == "balloon-ring"
    assert back.requests_handled == entry_count0


def test_variant_selects_flavor(hosted, cpu):
    mercury, guest, front, back, dom = hosted
    what = faults.inject_vmm_fault(faults.VMM_BALLOON_WEDGED, mercury,
                                   variant=1)
    assert "rsp_event" in what
