"""Hypervisor lifecycle, trap emulation, domains, hypercall dispatch."""

import pytest

from repro.errors import DomainError, HypercallError, VMMError
from repro.hw.cpu import PrivilegeLevel
from repro.hw.paging import AddressSpace, Pte
from repro.vmm.hypervisor import Hypervisor, VMM_OWNER, VmmState


def test_lifecycle_states(machine):
    vmm = Hypervisor(machine)
    assert vmm.state == VmmState.COLD
    vmm.warm_up()
    assert vmm.state == VmmState.WARM
    vmm.activate()
    assert vmm.state == VmmState.ACTIVE
    vmm.deactivate()
    assert vmm.state == VmmState.WARM


def test_illegal_transitions(machine):
    vmm = Hypervisor(machine)
    with pytest.raises(VMMError):
        vmm.activate()       # not warmed
    with pytest.raises(VMMError):
        vmm.deactivate()
    vmm.warm_up()
    with pytest.raises(VMMError):
        vmm.warm_up()        # double warm-up


def test_warm_up_reserves_frames(machine):
    free = machine.memory.free_frames
    vmm = Hypervisor(machine)
    vmm.warm_up()
    reserved = free - machine.memory.free_frames
    assert reserved > 0
    owned = machine.memory.frames_owned_by(VMM_OWNER)
    assert len(owned) == reserved


def test_activation_installs_trap_handlers(machine):
    vmm = Hypervisor(machine)
    vmm.warm_up()
    vmm.activate()
    assert all(c.trap_handler is not None for c in machine.cpus)
    vmm.deactivate()
    assert all(c.trap_handler is None for c in machine.cpus)


def test_trap_emulation_cli_sti_virtual_if(machine):
    vmm = Hypervisor(machine)
    vmm.warm_up()
    dom = vmm.create_domain("d", domain_id=0)
    vmm.activate()
    cpu = machine.boot_cpu
    cpu.set_privilege(PrivilegeLevel.PL1)
    cpu.privileged_op("cli")
    assert dom.vcpus[0].saved_if is False     # virtual IF cleared
    assert cpu.interrupts_enabled             # hardware IF untouched
    cpu.privileged_op("sti")
    assert dom.vcpus[0].saved_if is True


def test_trap_emulation_rejects_unknown(machine):
    vmm = Hypervisor(machine)
    vmm.warm_up()
    vmm.create_domain("d", domain_id=0)
    vmm.activate()
    cpu = machine.boot_cpu
    cpu.set_privilege(PrivilegeLevel.PL1)
    with pytest.raises(HypercallError):
        cpu.privileged_op("outb", 0x80, 1)


def test_guest_cr3_load_requires_validated_frame(machine):
    vmm = Hypervisor(machine)
    vmm.warm_up()
    dom = vmm.create_domain("d", domain_id=0)
    vmm.activate()
    aspace = AddressSpace(machine.memory, owner=0)
    cpu = machine.boot_cpu
    cpu.set_privilege(PrivilegeLevel.PL1)
    with pytest.raises(HypercallError):
        cpu.privileged_op("write_cr3", aspace.pgd_frame)  # unpinned
    cpu.set_privilege(PrivilegeLevel.PL0)
    dom.register_aspace(aspace)
    vmm.hypercall(cpu, dom, "mmuext_op", "pin_table", aspace)
    cpu.set_privilege(PrivilegeLevel.PL1)
    cpu.privileged_op("write_cr3", aspace.pgd_frame)
    assert cpu.cr3 == aspace.pgd_frame


def test_domain_ids_forced_and_autoincrement(warm_vmm):
    d5 = warm_vmm.create_domain("five", domain_id=5)
    d6 = warm_vmm.create_domain("next")
    assert (d5.domain_id, d6.domain_id) == (5, 6)
    with pytest.raises(DomainError):
        warm_vmm.create_domain("dup", domain_id=5)


def test_destroy_domain(warm_vmm):
    d = warm_vmm.create_domain("d")
    warm_vmm.destroy_domain(d)
    assert d.domain_id not in warm_vmm.domains
    assert not d.alive
    with pytest.raises(DomainError):
        warm_vmm.destroy_domain(d)


def test_hypercall_requires_active(warm_vmm, machine):
    d = warm_vmm.create_domain("d", domain_id=0)
    with pytest.raises(HypercallError):
        warm_vmm.hypercall(machine.boot_cpu, d, "console_io", "hi")


def test_unknown_hypercall(warm_vmm, machine):
    d = warm_vmm.create_domain("d", domain_id=0)
    warm_vmm.activate()
    with pytest.raises(HypercallError):
        warm_vmm.hypercall(machine.boot_cpu, d, "nonsense")


def test_hypercall_charges_entry_cost(warm_vmm, machine):
    d = warm_vmm.create_domain("d", domain_id=0)
    warm_vmm.activate()
    cpu = machine.boot_cpu
    t0 = cpu.rdtsc()
    warm_vmm.hypercall(cpu, d, "console_io", "hello")
    assert cpu.rdtsc() - t0 >= cpu.cost.cyc_hypercall
    assert warm_vmm.hypercalls_served == 1
    assert warm_vmm.console_log == [(0, "hello")]


def test_install_idt_forwards_to_guest_handlers(warm_vmm, machine):
    got = []
    d = warm_vmm.create_domain("d", domain_id=0, is_driver_domain=True)
    d.trap_table = {0x21: lambda cpu, vec: got.append(vec)}
    warm_vmm.activate()
    warm_vmm.install_idt_for(d)
    machine.intc.raise_vector(0, 0x21)
    machine.poll()
    assert got == [0x21]


def test_extra_gates_survive_idt_rebuild(warm_vmm, machine):
    got = []
    warm_vmm.extra_gates[0xF1] = lambda cpu, vec: got.append("detach")
    d = warm_vmm.create_domain("d", domain_id=0, is_driver_domain=True)
    warm_vmm.activate()
    warm_vmm.install_idt_for(d)   # rebuild
    machine.intc.raise_vector(0, 0xF1)
    machine.poll()
    assert got == ["detach"]


def test_world_switch_restores_cr3(warm_vmm, machine):
    d = warm_vmm.create_domain("d", num_vcpus=1, domain_id=0)
    warm_vmm.activate()
    cpu = machine.boot_cpu
    aspace = AddressSpace(machine.memory, owner=0)
    d.register_aspace(aspace)
    warm_vmm.hypercall(cpu, d, "mmuext_op", "pin_table", aspace)
    vcpu = d.vcpus[0]
    vcpu.saved_cr3 = aspace.pgd_frame
    warm_vmm.world_switch(cpu, None, vcpu)
    assert cpu.cr3 == aspace.pgd_frame
