"""I/O rings: the producer/consumer protocol and its invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RingError
from repro.vmm.rings import IoRing


def test_size_must_be_power_of_two():
    with pytest.raises(RingError):
        IoRing(size=12)
    with pytest.raises(RingError):
        IoRing(size=0)


def test_request_roundtrip():
    ring = IoRing(size=4)
    ring.push_request("r1")
    assert ring.has_requests()
    assert ring.pop_request() == "r1"
    ring.push_response("ok1")
    assert ring.has_responses()
    assert ring.pop_response() == "ok1"


def test_fifo_order():
    ring = IoRing(size=8)
    for i in range(5):
        ring.push_request(i)
    assert [ring.pop_request() for _ in range(5)] == list(range(5))


def test_request_overrun_rejected():
    ring = IoRing(size=2)
    ring.push_request("a")
    ring.push_request("b")
    with pytest.raises(RingError):
        ring.push_request("c")


def test_slots_freed_by_consuming_responses():
    ring = IoRing(size=2)
    ring.push_request("a")
    ring.push_request("b")
    ring.pop_request()
    # in-flight work still occupies the slot until the response is consumed
    with pytest.raises(RingError):
        ring.push_request("c")
    ring.push_response("a-done")
    ring.pop_response()
    ring.push_request("c")  # now there is room


def test_pop_empty_request_rejected():
    with pytest.raises(RingError):
        IoRing(size=2).pop_request()


def test_pop_empty_response_rejected():
    with pytest.raises(RingError):
        IoRing(size=2).pop_response()


def test_response_without_consumed_request_rejected():
    ring = IoRing(size=2)
    ring.push_request("a")
    with pytest.raises(RingError):
        ring.push_response("phantom")


def test_wraparound_preserves_order():
    ring = IoRing(size=4)
    for round_no in range(5):  # 20 items through a 4-slot ring
        for i in range(4):
            ring.push_request((round_no, i))
        for i in range(4):
            assert ring.pop_request() == (round_no, i)
            ring.push_response((round_no, i, "ok"))
        for i in range(4):
            assert ring.pop_response() == (round_no, i, "ok")
    ring.check_invariants()


def test_free_request_slots():
    ring = IoRing(size=4)
    assert ring.free_request_slots() == 4
    ring.push_request("a")
    assert ring.free_request_slots() == 3


# ---------------------------------------------------------------------------
# notification-avoidance protocol (§5.2)
# ---------------------------------------------------------------------------

def test_first_push_notifies():
    # req_event starts at 1: a consumer that has never run wants a wakeup
    # for the very first request
    ring = IoRing(size=4)
    ring.push_request("a")
    assert ring.push_requests_and_check_notify()


def test_pushes_while_consumer_awake_are_silent():
    ring = IoRing(size=8)
    ring.push_request("a")
    assert ring.push_requests_and_check_notify()
    # the consumer drains but stays in its poll loop — no wakeup advertised
    ring.pop_request()
    ring.push_request("b")
    assert not ring.push_requests_and_check_notify()


def test_final_check_rearms_notification():
    ring = IoRing(size=8)
    ring.push_request("a")
    assert ring.push_requests_and_check_notify()
    ring.pop_request()
    assert not ring.final_check_for_requests()  # idle: sleep is safe
    ring.push_request("b")
    assert ring.push_requests_and_check_notify()  # crossed req_event again


def test_final_check_catches_request_that_slipped_in():
    """The lost-wakeup window: a request pushed (and silently published)
    after the drain but before the sleep must be caught by the re-check."""
    ring = IoRing(size=8)
    ring.push_request("a")
    ring.push_requests_and_check_notify()
    ring.pop_request()
    ring.push_request("b")
    assert not ring.push_requests_and_check_notify()  # producer stays silent
    assert ring.final_check_for_requests()  # ...so the consumer must re-poll


def test_one_notify_amortizes_over_a_batch():
    ring = IoRing(size=8)
    for i in range(5):
        ring.push_request(i)
    assert ring.push_requests_and_check_notify()  # one notify for five
    while ring.has_requests():
        ring.pop_request()
    assert not ring.final_check_for_requests()
    for i in range(3):
        ring.push_request(i)
    # still one notify for the next batch, however large
    assert ring.push_requests_and_check_notify()


def test_response_side_protocol_is_symmetric():
    ring = IoRing(size=8)
    ring.push_request("a")
    ring.push_requests_and_check_notify()
    ring.pop_request()
    ring.push_response("a-done")
    assert ring.push_responses_and_check_notify()  # rsp_event starts at 1
    ring.pop_response()
    assert not ring.final_check_for_responses()
    # frontend asleep; the next completion push must notify again
    ring.push_request("b")
    ring.push_requests_and_check_notify()
    ring.pop_request()
    ring.push_response("b-done")
    assert ring.push_responses_and_check_notify()


def test_partial_publish_notifies_once():
    # push 3, publish, push 2 more, publish: the second publish is silent
    # because the first already crossed req_event
    ring = IoRing(size=8)
    for i in range(3):
        ring.push_request(i)
    assert ring.push_requests_and_check_notify()
    for i in range(2):
        ring.push_request(i)
    assert not ring.push_requests_and_check_notify()


def test_event_indices_keep_invariants():
    ring = IoRing(size=4)
    ring.push_request("a")
    ring.push_requests_and_check_notify()
    ring.pop_request()
    ring.final_check_for_requests()
    ring.push_response("ok")
    ring.push_responses_and_check_notify()
    ring.pop_response()
    ring.final_check_for_responses()
    ring.check_invariants()


@settings(max_examples=60, deadline=None)
@given(st.lists(st.sampled_from(["req", "take", "resp", "ack"]), max_size=120))
def test_property_protocol_invariants_hold(ops):
    """Any legal interleaving keeps index ordering and never corrupts
    FIFO data; illegal steps always raise rather than corrupt."""
    ring = IoRing(size=4)
    sent, taken, answered, acked = [], [], [], []
    seq = 0
    for op in ops:
        try:
            if op == "req":
                ring.push_request(seq)
                sent.append(seq)
                seq += 1
            elif op == "take":
                taken.append(ring.pop_request())
            elif op == "resp":
                if taken and len(answered) < len(taken):
                    item = taken[len(answered)]
                    ring.push_response(item)
                    answered.append(item)
                else:
                    with pytest.raises(RingError):
                        ring.push_response(None)
            elif op == "ack":
                acked.append(ring.pop_response())
        except RingError:
            pass
        ring.check_invariants()
    assert taken == sent[:len(taken)]
    assert acked == answered[:len(acked)]
