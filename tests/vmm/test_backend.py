"""Backend drivers: blkback request handling and write caching, netback."""

import pytest

from repro.hw.devices import BlockRequest, Packet
from repro.vmm.backend import BlkBack, BlkRingEntry, NetBack, NetRingEntry
from repro.vmm.rings import IoRing


@pytest.fixture
def blk_env(machine, warm_vmm):
    dom0 = warm_vmm.create_domain("dom0", domain_id=0, is_driver_domain=True)
    warm_vmm.activate()
    ring = IoRing(size=8)
    notified = []

    def submit(cpu, req):
        machine.disk.submit(req)
        # dom0's native driver would wait; tests drive the clock directly
        while not req.done:
            deadline = machine.clock.next_deadline()
            machine.clock.cycles = max(machine.clock.cycles, deadline)
            machine.clock.run_due()

    # the disk line must be bound for completion interrupts
    from repro.hw.interrupts import Idt, VEC_DISK
    idt = Idt("t")
    idt.set_gate(VEC_DISK, lambda c, v: None)
    machine.boot_cpu.load_idt(idt)
    machine.intc.bind_line("sda", 0, VEC_DISK)

    back = BlkBack(warm_vmm, dom0, ring,
                   notify_frontend=lambda cpu: notified.append(1),
                   submit=submit)
    return machine.boot_cpu, machine, ring, back, notified


def test_blkback_write_then_read_cached(blk_env):
    cpu, machine, ring, back, notified = blk_env
    ring.push_request(BlkRingEntry(op="write", block=2000, data="v1"))
    assert back.kick(cpu) == 1
    assert notified == [1]
    ring.pop_response()
    ring.push_request(BlkRingEntry(op="read", block=2000))
    back.kick(cpu)
    assert ring.pop_response().result == "v1"


def test_blkback_cached_write_eventually_hits_disk(blk_env):
    cpu, machine, ring, back, notified = blk_env
    ring.push_request(BlkRingEntry(op="write", block=3000, data="persist"))
    back.kick(cpu)
    ring.pop_response()
    machine.run_until_idle()  # async flush completes
    assert machine.disk.blocks[3000] == "persist"


def test_blkback_cached_ack_is_fast(blk_env):
    """The dbench-inversion mechanism: a cached write ack must cost far
    less than a device write."""
    cpu, machine, ring, back, notified = blk_env
    t0 = machine.clock.cycles
    ring.push_request(BlkRingEntry(op="write", block=4000, data="x"))
    back.kick(cpu)
    ring.pop_response()
    ack_cycles = machine.clock.cycles - t0
    device_cycles = int(cpu.cost.cycles_from_ns(
        cpu.cost.disk_xfer_ns_per_kb * 4))
    assert ack_cycles < device_cycles


def test_blkback_writethrough_mode_waits(machine, warm_vmm):
    dom0 = warm_vmm.create_domain("dom0", domain_id=0, is_driver_domain=True)
    warm_vmm.activate()
    from repro.hw.interrupts import Idt, VEC_DISK
    idt = Idt("t")
    idt.set_gate(VEC_DISK, lambda c, v: None)
    machine.boot_cpu.load_idt(idt)
    machine.intc.bind_line("sda", 0, VEC_DISK)
    ring = IoRing(size=8)

    def submit(cpu, req):
        machine.disk.submit(req)

    back = BlkBack(warm_vmm, dom0, ring, notify_frontend=lambda c: None,
                   submit=submit, write_cache=False)
    ring.push_request(BlkRingEntry(op="write", block=9000, data="sync"))
    back.kick(machine.boot_cpu)
    assert machine.disk.blocks[9000] == "sync"  # already on the platter


def test_blkback_read_miss_goes_to_device(blk_env):
    cpu, machine, ring, back, notified = blk_env
    machine.disk.write_sync(7000, "from-disk")
    ring.push_request(BlkRingEntry(op="read", block=7000))
    back.kick(cpu)
    assert ring.pop_response().result == "from-disk"


def test_blkback_flush_clears_cache(blk_env):
    cpu, machine, ring, back, notified = blk_env
    ring.push_request(BlkRingEntry(op="write", block=2000, data="v1"))
    back.kick(cpu)
    ring.pop_response()
    ring.push_request(BlkRingEntry(op="flush", block=0))
    back.kick(cpu)
    ring.pop_response()
    assert back.flushes == 1
    assert back._cache == {}


def test_blkback_unknown_op_flagged(blk_env):
    cpu, machine, ring, back, notified = blk_env
    ring.push_request(BlkRingEntry(op="format", block=0))
    back.kick(cpu)
    assert ring.pop_response().ok is False


def test_netback_tx_forwards_to_wire(machine, warm_vmm):
    dom0 = warm_vmm.create_domain("dom0", domain_id=0, is_driver_domain=True)
    warm_vmm.activate()
    tx, rx = IoRing(size=8), IoRing(size=8)
    wire = []
    back = NetBack(warm_vmm, dom0, tx, rx,
                   notify_frontend=lambda c: None,
                   transmit=lambda c, pkt: wire.append(pkt))
    pkt = Packet("a", "b", "udp", 1000)
    tx.push_request(NetRingEntry(pkt=pkt))
    assert back.kick_tx(machine.boot_cpu) == 1
    assert wire == [pkt]
    assert tx.pop_response().pkt is pkt


def test_netback_rx_forwards_up(machine, warm_vmm):
    dom0 = warm_vmm.create_domain("dom0", domain_id=0, is_driver_domain=True)
    warm_vmm.activate()
    tx, rx = IoRing(size=8), IoRing(size=8)
    kicked = []
    back = NetBack(warm_vmm, dom0, tx, rx,
                   notify_frontend=lambda c: kicked.append(1),
                   transmit=lambda c, p: None)
    pkt = Packet("peer", "guest", "tcp", 512)
    back.forward_rx(machine.boot_cpu, pkt)
    assert kicked == [1]
    assert rx.pop_request().pkt is pkt
