"""Event channels and grant tables."""

import pytest

from repro.errors import GrantError, VMMError
from repro.vmm.events import EventChannels
from repro.vmm.grants import GrantTable


# ---------------------------------------------------------------------------
# event channels
# ---------------------------------------------------------------------------

def test_alloc_and_connect(cpu):
    ev = EventChannels()
    a = ev.alloc(0)
    b = ev.alloc(1)
    ev.connect(a, b)
    assert a.peer_domain == 1 and b.peer_domain == 0


def test_send_fires_peer_handler(cpu):
    ev = EventChannels()
    fired = []
    a = ev.alloc(0)
    b = ev.alloc(1, handler=lambda: fired.append("b"))
    ev.connect(a, b)
    ev.send(cpu, a)
    assert fired == ["b"]
    assert b.fires == 1
    assert not b.pending


def test_send_charges_event_cost(cpu):
    ev = EventChannels()
    a, b = ev.alloc(0), ev.alloc(1, handler=lambda: None)
    ev.connect(a, b)
    t0 = cpu.rdtsc()
    ev.send(cpu, a)
    assert cpu.rdtsc() - t0 == cpu.cost.cyc_event_channel


def test_masked_channel_stays_pending(cpu):
    ev = EventChannels()
    fired = []
    a = ev.alloc(0)
    b = ev.alloc(1, handler=lambda: fired.append("b"))
    ev.connect(a, b)
    ev.mask(b)
    ev.send(cpu, a)
    assert fired == [] and b.pending
    ev.unmask(cpu, b)
    assert fired == ["b"] and not b.pending


def test_sends_while_pending_coalesce(cpu):
    """The pending bit is level-triggered: N sends before the upcall runs
    deliver exactly one upcall (§5.2 — this is what makes the backend's
    masked poll window cheap)."""
    ev = EventChannels()
    fired = []
    a = ev.alloc(0)
    b = ev.alloc(1, handler=lambda: fired.append("b"))
    ev.connect(a, b)
    ev.mask(b)
    for _ in range(5):
        ev.send(cpu, a)
    assert fired == [] and b.pending
    assert b.sends == 5
    assert b.fires == 1  # one pending-bit set...
    assert b.coalesced == 4  # ...absorbed the other four
    ev.unmask(cpu, b)
    assert fired == ["b"]  # one delivery for five sends
    assert ev.total_coalesced() == 4


def test_coalesced_send_still_charges_sender(cpu):
    # the hypercall is paid per send even when the event collapses
    ev = EventChannels()
    a, b = ev.alloc(0), ev.alloc(1, handler=lambda: None)
    ev.connect(a, b)
    ev.mask(b)
    t0 = cpu.rdtsc()
    ev.send(cpu, a)
    ev.send(cpu, a)
    assert cpu.rdtsc() - t0 == 2 * cpu.cost.cyc_event_channel


def test_stats_zero_on_quiet_channel(cpu):
    ev = EventChannels()
    a, b = ev.alloc(0), ev.alloc(1, handler=lambda: None)
    ev.connect(a, b)
    assert (b.sends, b.fires, b.coalesced) == (0, 0, 0)
    assert ev.total_coalesced() == 0


def test_send_unconnected_rejected(cpu):
    ev = EventChannels()
    a = ev.alloc(0)
    with pytest.raises(VMMError):
        ev.send(cpu, a)


def test_lookup_unknown_rejected():
    ev = EventChannels()
    with pytest.raises(VMMError):
        ev.lookup(5, 1)


def test_close_domain_disconnects_peers(cpu):
    ev = EventChannels()
    a, b = ev.alloc(0), ev.alloc(1, handler=lambda: None)
    ev.connect(a, b)
    ev.close_domain(1)
    assert a.peer_domain is None
    with pytest.raises(VMMError):
        ev.lookup(1, b.port)


def test_ports_are_per_domain():
    ev = EventChannels()
    a1 = ev.alloc(0)
    a2 = ev.alloc(0)
    b1 = ev.alloc(1)
    assert (a1.port, a2.port) == (1, 2)
    assert b1.port == 1


# ---------------------------------------------------------------------------
# grants
# ---------------------------------------------------------------------------

@pytest.fixture
def granted(machine):
    gt = GrantTable(machine.memory)
    frame = machine.memory.alloc(0)
    entry = gt.grant(0, frame, peer_domain=1)
    return machine.boot_cpu, gt, frame, entry


def test_grant_requires_ownership(machine):
    gt = GrantTable(machine.memory)
    frame = machine.memory.alloc(7)
    with pytest.raises(GrantError):
        gt.grant(0, frame, peer_domain=1)


def test_map_unmap_roundtrip(granted):
    cpu, gt, frame, entry = granted
    mapped = gt.map(cpu, 1, 0, entry.ref)
    assert mapped.frame == frame
    assert mapped.active_maps == 1
    gt.unmap(cpu, 0, entry.ref)
    assert entry.active_maps == 0


def test_map_charges_cost(granted):
    cpu, gt, frame, entry = granted
    t0 = cpu.rdtsc()
    gt.map(cpu, 1, 0, entry.ref)
    assert cpu.rdtsc() - t0 == cpu.cost.cyc_grant_map


def test_map_by_wrong_peer_rejected(granted):
    cpu, gt, frame, entry = granted
    with pytest.raises(GrantError):
        gt.map(cpu, 2, 0, entry.ref)


def test_unmap_without_map_rejected(granted):
    cpu, gt, frame, entry = granted
    with pytest.raises(GrantError):
        gt.unmap(cpu, 0, entry.ref)


def test_revoke_blocks_new_maps(granted):
    cpu, gt, frame, entry = granted
    gt.revoke(0, entry.ref)
    with pytest.raises(GrantError):
        gt.map(cpu, 1, 0, entry.ref)


def test_revoke_refused_while_mapped(granted):
    cpu, gt, frame, entry = granted
    gt.map(cpu, 1, 0, entry.ref)
    with pytest.raises(GrantError):
        gt.revoke(0, entry.ref)


def test_unknown_ref_rejected(granted):
    cpu, gt, frame, entry = granted
    with pytest.raises(GrantError):
        gt.map(cpu, 1, 0, 999)


def test_active_grants_of(granted):
    cpu, gt, frame, entry = granted
    assert len(gt.active_grants_of(0)) == 1
    gt.revoke(0, entry.ref)
    assert gt.active_grants_of(0) == []
