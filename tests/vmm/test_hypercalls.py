"""The hypercall table: mmu_update, pinning, traps, events, scheduling."""

import pytest

from repro.errors import HypercallError, PageValidationError
from repro.hw.paging import AddressSpace, Pte
from repro.vmm.page_info import PageType


@pytest.fixture
def env(machine, warm_vmm):
    dom = warm_vmm.create_domain("d", domain_id=0, is_driver_domain=True)
    warm_vmm.activate()
    aspace = AddressSpace(machine.memory, owner=0)
    dom.register_aspace(aspace)
    return machine.boot_cpu, machine, warm_vmm, dom, aspace


def test_mmu_update_installs_and_clears(env):
    cpu, machine, vmm, dom, aspace = env
    frame = machine.memory.alloc(0)
    n = vmm.hypercall(cpu, dom, "mmu_update",
                      [(aspace, 0x4000, Pte(frame=frame))])
    assert n == 1
    assert aspace.get_pte(0x4000).frame == frame
    vmm.hypercall(cpu, dom, "mmu_update", [(aspace, 0x4000, None)])
    assert aspace.get_pte(0x4000) is None
    assert vmm.page_info.type[frame] == PageType.NONE


def test_mmu_update_unregistered_aspace_rejected(env):
    cpu, machine, vmm, dom, aspace = env
    rogue = AddressSpace(machine.memory, owner=0)
    frame = machine.memory.alloc(0)
    with pytest.raises(HypercallError):
        vmm.hypercall(cpu, dom, "mmu_update",
                      [(rogue, 0x4000, Pte(frame=frame))])


def test_mmu_update_foreign_frame_rejected(env):
    cpu, machine, vmm, dom, aspace = env
    foreign = machine.memory.alloc(31)
    with pytest.raises(PageValidationError):
        vmm.hypercall(cpu, dom, "mmu_update",
                      [(aspace, 0x4000, Pte(frame=foreign))])


def test_update_va_mapping_costs_more_than_batched(env):
    cpu, machine, vmm, dom, aspace = env
    frames = [machine.memory.alloc(0) for _ in range(8)]
    t0 = cpu.rdtsc()
    for i, f in enumerate(frames[:4]):
        vmm.hypercall(cpu, dom, "update_va_mapping", aspace,
                      0x10000 + i * 4096, Pte(frame=f))
    single = cpu.rdtsc() - t0
    t0 = cpu.rdtsc()
    vmm.hypercall(cpu, dom, "mmu_update",
                  [(aspace, 0x20000 + i * 4096, Pte(frame=f))
                   for i, f in enumerate(frames[4:])])
    batched = cpu.rdtsc() - t0
    assert batched < single


def test_pin_unpin_table(env):
    cpu, machine, vmm, dom, aspace = env
    frame = machine.memory.alloc(0)
    aspace.set_pte(0x1000, Pte(frame=frame))
    vmm.hypercall(cpu, dom, "mmuext_op", "pin_table", aspace)
    assert aspace.pgd_frame in vmm.page_info.pinned
    vmm.hypercall(cpu, dom, "mmuext_op", "unpin_table", aspace)
    assert aspace.pgd_frame not in vmm.page_info.pinned


def test_new_baseptr_requires_pin(env):
    cpu, machine, vmm, dom, aspace = env
    with pytest.raises(HypercallError):
        vmm.hypercall(cpu, dom, "mmuext_op", "new_baseptr", aspace)
    vmm.hypercall(cpu, dom, "mmuext_op", "pin_table", aspace)
    vmm.hypercall(cpu, dom, "mmuext_op", "new_baseptr", aspace)
    assert cpu.cr3 == aspace.pgd_frame


def test_tlb_ops(env):
    cpu, machine, vmm, dom, aspace = env
    cpu.tlb.fill(5, 50, True)
    vmm.hypercall(cpu, dom, "mmuext_op", "invlpg_local", None, 5 * 4096)
    assert 5 not in cpu.tlb
    cpu.tlb.fill(6, 60, True)
    vmm.hypercall(cpu, dom, "mmuext_op", "tlb_flush_local")
    assert len(cpu.tlb) == 0


def test_unknown_mmuext_rejected(env):
    cpu, machine, vmm, dom, aspace = env
    with pytest.raises(HypercallError):
        vmm.hypercall(cpu, dom, "mmuext_op", "frobnicate")


def test_set_trap_table_refreshes_active_idt(env):
    cpu, machine, vmm, dom, aspace = env
    got = []
    vmm.hypercall(cpu, dom, "set_trap_table",
                  {0x33: lambda c, v: got.append(v)})
    machine.intc.raise_vector(0, 0x33)
    machine.poll()
    assert got == [0x33]


def test_set_gdt_refuses_pl0(env):
    cpu, machine, vmm, dom, aspace = env
    with pytest.raises(HypercallError):
        vmm.hypercall(cpu, dom, "set_gdt", 0)


def test_set_gdt_applies_dpl(env):
    cpu, machine, vmm, dom, aspace = env
    from repro.hw.cpu import SegmentDescriptor
    cpu.gdt = {1: SegmentDescriptor("kernel_cs", 0)}
    vmm.hypercall(cpu, dom, "set_gdt", 1)
    assert cpu.gdt[1].dpl == 1


def test_vm_assist_toggles(env):
    cpu, machine, vmm, dom, aspace = env
    vmm.hypercall(cpu, dom, "vm_assist", "writable_pagetables", True)
    assert "writable_pagetables" in dom.assists
    vmm.hypercall(cpu, dom, "vm_assist", "writable_pagetables", False)
    assert "writable_pagetables" not in dom.assists


def test_event_channel_op_send_foreign_rejected(env):
    cpu, machine, vmm, dom, aspace = env
    other = vmm.create_domain("other")
    ch = vmm.hypercall(cpu, other, "event_channel_op", "alloc")
    with pytest.raises(HypercallError):
        vmm.hypercall(cpu, dom, "event_channel_op", "send", ch)


def test_grant_table_op_roundtrip(env):
    cpu, machine, vmm, dom, aspace = env
    other = vmm.create_domain("other")
    frame = machine.memory.alloc(0)
    grant = vmm.hypercall(cpu, dom, "grant_table_op", "grant",
                          frame, other.domain_id, False)
    mapped = vmm.hypercall(cpu, other, "grant_table_op", "map",
                           dom.domain_id, grant.ref)
    assert mapped.frame == frame
    vmm.hypercall(cpu, other, "grant_table_op", "unmap",
                  dom.domain_id, grant.ref)


def test_sched_op_yield_and_block(env):
    cpu, machine, vmm, dom, aspace = env
    nxt = vmm.hypercall(cpu, dom, "sched_op", "yield")
    assert nxt is not None
    vmm.hypercall(cpu, dom, "sched_op", "block")
    assert not dom.vcpus[0].runnable


def test_stack_switch_records_sp(env):
    cpu, machine, vmm, dom, aspace = env
    vmm.hypercall(cpu, dom, "stack_switch", 0xdeadbeef)
    assert dom.vcpus[0].kernel_sp == 0xdeadbeef
