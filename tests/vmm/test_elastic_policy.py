"""Elastic reclaim policy properties, hypothesis-driven.

The load-bearing claim: **frame ownership is conserved**.  Under any
policy schedule — either strategy, any pressure pattern, any step sizes —
every frame a guest balloons out is either in the host free pool or
re-granted to a domain; the owner column and the reservation ledger move
in lockstep (Δowned == Δledger per domain), no frame is double-owned, no
domain is reclaimed below its floor, and the host keeps its headroom.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Machine, Mercury, small_config
from repro.hw.machine import reset_machine_ids
from repro.vmm.elastic import (HOST_HEADROOM_FRAMES, STRATEGIES,
                               ElasticMemoryController)


def _build(num_guests: int, reservations, floors):
    machine = Machine(small_config())
    mercury = Mercury(machine)
    mercury.create_kernel(name="driver", image_pages=16)
    cpu = machine.boot_cpu
    mercury.attach(cpu)
    guests = []
    for i in range(num_guests):
        guests.append(mercury.host_guest(
            name=f"g{i}", image_pages=8,
            mem_pages=reservations[i], mem_floor=floors[i]))
    return machine, mercury, cpu, guests


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(data=st.data())
def test_ownership_conserved_under_any_policy_schedule(data):
    reset_machine_ids()
    strategy = data.draw(st.sampled_from(STRATEGIES))
    num_guests = data.draw(st.integers(1, 3))
    reservations = [data.draw(st.integers(40, 80), label=f"mem{i}")
                    for i in range(num_guests)]
    floors = [data.draw(st.integers(0, 32), label=f"floor{i}")
              for i in range(num_guests)]
    machine, mercury, cpu, guests = _build(num_guests, reservations, floors)
    mem = machine.memory

    # map part of guest 0's reservation so hypervisor-driven victim
    # picking has hot frames to steal
    front0, _ = mercury.balloons[guests[0].owner_id]
    front0.map_pool_frames(cpu, guests[0].scheduler.current,
                           data.draw(st.integers(0, 8), label="mapped"))

    pressures: dict[int, int] = {}
    controller = ElasticMemoryController(
        mercury, strategy,
        reclaim_step=data.draw(st.integers(1, 24), label="reclaim_step"),
        grant_step=data.draw(st.integers(1, 24), label="grant_step"),
        pressure_fn=lambda owner: pressures.get(owner, 0))

    base = {g.owner_id: (len(mem.frames_owned_by(g.owner_id)),
                         mercury.vmm.domains[g.owner_id].mem_pages)
            for g in guests}

    rounds = data.draw(st.integers(1, 6), label="rounds")
    for _ in range(rounds):
        for g in guests:
            pressures[g.owner_id] = data.draw(st.integers(0, 1))
        controller.rebalance(cpu)

        for g in guests:
            dom = mercury.vmm.domains[g.owner_id]
            owned0, ledger0 = base[g.owner_id]
            owned = len(mem.frames_owned_by(g.owner_id))
            # conservation: the owner column and the ledger move together
            assert owned - owned0 == dom.mem_pages - ledger0, (
                f"{strategy}: domain {g.owner_id} owns {owned} frames but "
                f"ledger says {dom.mem_pages} (base {owned0}/{ledger0})")
            # the floor is inviolable
            assert dom.mem_pages >= dom.mem_floor
        # a grant never starves the host
        assert mem.free_frames >= 0
        if controller.pages_granted:
            assert mem.free_frames >= HOST_HEADROOM_FRAMES

    # no frame is double-owned: the per-owner frame sets partition memory
    seen: set[int] = set()
    for g in guests:
        frames = set(int(f) for f in mem.frames_owned_by(g.owner_id))
        assert not (frames & seen)
        seen |= frames


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**16), strategy=st.sampled_from(STRATEGIES))
def test_policy_is_deterministic(seed, strategy):
    """Same stack, same schedule, same decisions — the controller is a
    pure function of simulator state."""
    logs = []
    for _ in range(2):
        reset_machine_ids()
        machine, mercury, cpu, guests = _build(
            2, [48 + seed % 16, 56], [16, 8])
        controller = ElasticMemoryController(
            mercury, strategy, pressure_fn=lambda owner: owner % 2)
        for _round in range(4):
            controller.rebalance(cpu)
        logs.append((controller.log, controller.summary()))
    assert logs[0] == logs[1]
