"""Failure-prediction edges in the §6.5 cluster scenario.

Two races the happy-path tests never hit: a predicted-failed node whose
sensors recover before the migration completes, and two simultaneous
predictions contending for the same standby."""

from __future__ import annotations

import pytest

from repro.core.mercury import Mode
from repro.errors import ScenarioError
from repro.scenarios.cluster import HpcCluster, NodeState


def _warn(node, temp=95.0):
    node.monitor.temperature_c = temp
    assert node.monitor.predicts_failure()


# -- recovery before the migration completes -------------------------------

def test_prediction_clears_mid_precopy_cancels_migration():
    """Sensors recover during pre-copy: the evacuation is abandoned, the
    node rolls back to native with its job intact, and the standby is
    left native too."""
    cluster = HpcCluster(num_nodes=2)
    node, standby = cluster.nodes
    node.job_progress = 0
    for _ in range(3):
        node.run_job_step()
    _warn(node)

    def recover(round_no):
        node.monitor.temperature_c = 45.0  # transient event passes

    survivor = cluster.handle_warning(node, mutator=recover,
                                      cancel_on_recovery=True)
    assert survivor is node
    assert node.state is NodeState.HEALTHY
    assert node.mercury.mode is Mode.NATIVE
    assert standby.mercury.mode is Mode.NATIVE
    assert cluster.evacuations == 0
    assert node.job_progress == 3
    node.run_job_step()                     # the job keeps running here
    assert node.job_progress == 4


def test_cancelled_node_can_still_evacuate_later():
    """The rollback leaves the stack reusable: a later (real) prediction
    evacuates normally."""
    cluster = HpcCluster(num_nodes=2)
    node, standby = cluster.nodes
    node.job_progress = 5
    _warn(node)
    cluster.handle_warning(
        node,
        mutator=lambda r: setattr(node.monitor, "temperature_c", 50.0),
        cancel_on_recovery=True)
    assert node.state is NodeState.HEALTHY

    _warn(node)
    hosted_by = cluster.handle_warning(node)
    assert hosted_by is standby
    assert node.state is NodeState.EVACUATED
    assert standby.job_progress == 5
    assert cluster.evacuations == 1


def test_recovery_after_stop_and_copy_is_too_late():
    """Once pre-copy ends, the switchover is committed: a recovery that
    lands during the *last* round check no longer helps — without
    ``cancel_on_recovery`` the migration just completes."""
    cluster = HpcCluster(num_nodes=2)
    node, standby = cluster.nodes
    node.job_progress = 1
    _warn(node)
    flips = []

    def recover_late(round_no):
        flips.append(round_no)
        node.monitor.temperature_c = 45.0

    hosted_by = cluster.handle_warning(node, mutator=recover_late)
    assert hosted_by is standby
    assert node.state is NodeState.EVACUATED
    assert flips  # the sensors did recover, but nobody was rechecking


def test_no_prediction_is_rejected():
    cluster = HpcCluster(num_nodes=2)
    with pytest.raises(ScenarioError, match="no failure prediction"):
        cluster.handle_warning(cluster.nodes[0])


# -- two predictions racing for the standby pool ---------------------------

def test_simultaneous_predictions_take_distinct_standbys():
    """With enough healthy peers, the second prediction must not pile
    onto the standby the first one took."""
    cluster = HpcCluster(num_nodes=4)
    n0, n1, n2, n3 = cluster.nodes
    _warn(n0)
    _warn(n1)

    first = cluster.handle_warning(n0)
    second = cluster.handle_warning(n1)
    assert first is n2
    assert second is n3                     # not n2 again
    assert len(n2.mercury.guests) == 1
    assert len(n3.mercury.guests) == 1
    assert cluster.evacuations == 2


def test_simultaneous_predictions_share_the_last_standby():
    """With one healthy peer left, the second evacuee lands as a second
    hosted guest on the same standby instead of being dropped."""
    cluster = HpcCluster(num_nodes=3)
    n0, n1, n2 = cluster.nodes
    n0.job_progress = 7
    n1.job_progress = 9
    _warn(n0)
    _warn(n1)

    assert cluster.handle_warning(n0) is n2
    assert cluster.handle_warning(n1) is n2
    assert len(n2.mercury.guests) == 2
    assert n0.state is NodeState.EVACUATED
    assert n1.state is NodeState.EVACUATED
    # job bookkeeping follows the most recent evacuee (documented quirk
    # of the scalar job slot; the hosted kernels both run)
    assert n2.job_progress == 9


def test_warned_node_is_not_a_standby():
    """A node whose own sensors fired must never be chosen to host an
    evacuee, even before its migration starts."""
    cluster = HpcCluster(num_nodes=3)
    n0, n1, n2 = cluster.nodes
    _warn(n0)
    _warn(n1)
    n1.state = NodeState.WARNED             # n1's evacuation is pending
    assert cluster.handle_warning(n0) is n2


def test_all_peers_unhealthy_raises_cleanly():
    cluster = HpcCluster(num_nodes=2)
    n0, n1 = cluster.nodes
    _warn(n0)
    n1.state = NodeState.FAILED
    with pytest.raises(ScenarioError, match="no healthy standby"):
        cluster.handle_warning(n0)
    # the failed lookup happened before any mode switch: n0 untouched
    assert n0.mercury.mode is Mode.NATIVE