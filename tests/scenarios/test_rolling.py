"""Rolling cluster maintenance and migration-with-packet-loss."""

import pytest

from repro import Machine, Mercury, small_config
from repro.core.mercury import Mode
from repro.scenarios.cluster import HpcCluster
from repro.scenarios.migration import LiveMigration


def test_rolling_maintenance_services_every_node():
    cluster = HpcCluster(num_nodes=3)
    cluster.nodes[0].job_progress = 0
    serviced = []

    def maintain(node):
        serviced.append(node.name)
        node.machine.clock.advance(300_000_000)  # 100 ms of work

    order = cluster.rolling_maintenance(maintain, job_steps_between=2)
    assert order == ["node0", "node1", "node2"]
    assert serviced == order
    # every node ends back in native mode, and node0's job progressed
    # across its own maintenance round
    for node in cluster.nodes:
        assert node.mercury.mode is Mode.NATIVE
    assert cluster.nodes[0].job_progress == 2


def test_rolling_maintenance_nodes_still_functional():
    cluster = HpcCluster(num_nodes=2)
    cluster.rolling_maintenance(lambda n: None)
    for node in cluster.nodes:
        k = node.mercury.kernel
        cpu = node.machine.boot_cpu
        pid = k.syscall(cpu, "fork")
        k.run_and_reap(cpu, k.procs.get(pid))
        # and each can still self-virtualize
        node.mercury.attach()
        node.mercury.detach()


def test_migration_blackout_absorbed_by_protocol():
    """§5.2 end to end: a peer streams reliably to the system under test;
    a migration-style network blackout drops frames mid-stream; the
    protocol retransmits and the stream completes intact."""
    from repro.bench.configs import BareMetalVO
    from repro.guestos.kernel import Kernel
    from repro.guestos.net import MSS

    a = Machine(small_config())
    b = Machine(small_config(), clock=a.clock)
    link = a.link_to(b)
    sender = Kernel(a, BareMetalVO(a), name="peer")
    target = Kernel(b, BareMetalVO(b), name="sut")
    sender.boot(image_pages=4)
    target.boot(image_pages=4)

    ca, cb = a.boot_cpu, b.boot_cpu
    s = sender.syscall(ca, "socket", "tcp")
    target.syscall(cb, "socket", "tcp")
    segments = [(i, MSS, f"chunk-{i}") for i in range(12)]

    def drain():
        clock = a.clock
        for _ in range(300):
            d = clock.next_deadline()
            if d is not None and d > clock.cycles:
                clock.cycles = d
            fired = clock.run_due()
            handled = a.poll() + b.poll()
            if not fired and not handled and clock.next_deadline() is None:
                break

    rounds = 0
    while not sender.net.reliable_done(s, 12):
        if rounds == 1:
            link.drop_next = 8  # the migration blackout window
        sender.net.reliable_send_window(ca, s, target.net_addr,
                                        segments, window=4)
        drain()
        rounds += 1
        assert rounds < 60
    rx = target.net.sockets[1]
    assert rx.rx_delivered == [f"chunk-{i}" for i in range(12)]
    assert link.dropped > 0
    assert sender.net.sockets[s].retransmissions > 0
