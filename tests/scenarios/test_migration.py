"""Live migration: pre-copy convergence, downtime, fidelity."""

import pytest

from repro import Machine, Mercury, small_config
from repro.core.mercury import Mode
from repro.errors import MigrationError
from repro.params import PAGE_SIZE
from repro.scenarios.migration import LiveMigration


@pytest.fixture
def pair():
    """Source Mercury (with workload state) and an attached target."""
    src_machine = Machine(small_config())
    src = Mercury(src_machine)
    k = src.create_kernel(name="src-linux", image_pages=8)
    cpu = src_machine.boot_cpu
    fd = k.syscall(cpu, "open", "/carry", True)
    k.syscall(cpu, "write", fd, "cargo", 4096)
    k.syscall(cpu, "fsync", fd)

    dst_machine = Machine(small_config(mem_kb=32768), clock=src_machine.clock)
    dst = Mercury(dst_machine)
    dst.create_kernel(name="dst-linux", image_pages=8)
    src_machine.link_to(dst_machine)
    dst.attach()
    return src, dst


def test_requires_full_virtual_source(pair):
    src, dst = pair
    with pytest.raises(MigrationError):
        LiveMigration(src, dst).run()


def test_requires_attached_target(pair):
    src, dst = pair
    src.full_virtualize()
    dst_native = Mercury(Machine(small_config(), clock=src.machine.clock))
    dst_native.create_kernel(name="n")
    with pytest.raises(MigrationError):
        LiveMigration(src, dst_native).run()


def test_requires_shared_clock(pair):
    src, dst = pair
    other = Mercury(Machine(small_config()))
    with pytest.raises(MigrationError):
        LiveMigration(src, other)


def test_migration_lands_as_hosted_guest(pair):
    src, dst = pair
    src.full_virtualize()
    restored, report = LiveMigration(src, dst).run()
    assert restored in dst.guests
    assert restored.fs.exists("/carry")
    assert not report.aborted
    assert report.total_pages_sent > 0


def test_quiet_guest_converges_in_one_round(pair):
    src, dst = pair
    src.full_virtualize()
    _, report = LiveMigration(src, dst).run(mutator=lambda r: None)
    assert len(report.rounds) == 1  # nothing re-dirtied


def test_dirtying_mutator_forces_more_rounds(pair):
    src, dst = pair
    k = src.kernel
    cpu = src.machine.boot_cpu
    task = k.scheduler.current
    base = k.syscall(cpu, "mmap", 4 * PAGE_SIZE, True)
    frames = [k.vmem.access(cpu, task, base + i * PAGE_SIZE, write=True)
              for i in range(4)]
    src.full_virtualize()

    def mutator(round_no):
        for f in frames:
            src.machine.memory.write(f, f"dirty-{round_no}")

    _, report = LiveMigration(src, dst, max_rounds=4,
                              dirty_threshold=2).run(mutator=mutator)
    assert len(report.rounds) >= 2
    # later rounds send only the re-dirtied pages, not everything
    assert report.rounds[-1].pages_sent < report.rounds[0].pages_sent


def test_downtime_is_a_fraction_of_total(pair):
    src, dst = pair
    src.full_virtualize()
    _, report = LiveMigration(src, dst).run()
    assert 0 < report.downtime_cycles <= report.total_cycles
    assert report.downtime_ms() < report.total_ms()


def test_source_frames_released(pair):
    src, dst = pair
    src.full_virtualize()
    owner = src.kernel.owner_id
    LiveMigration(src, dst).run()
    assert len(src.machine.memory.frames_owned_by(owner)) == 0


def test_migrated_guest_runs_new_work(pair):
    src, dst = pair
    src.full_virtualize()
    restored, _ = LiveMigration(src, dst).run()
    cpu = dst.machine.boot_cpu
    pid = restored.syscall(cpu, "fork")
    restored.run_and_reap(cpu, restored.procs.get(pid))
    fd = restored.syscall(cpu, "open", "/carry", False)
    restored.syscall(cpu, "lseek", fd, 0)
    assert restored.syscall(cpu, "read", fd, 4096) == ["cargo"]
