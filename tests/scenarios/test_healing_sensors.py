"""Unit coverage for the §6.2 sensor suite and the watchdog wiring.

The cluster-level tests exercise the sensors through ``SelfHealer.scan``;
here each built-in ``detect``/``repair`` pair is driven directly (fires on
exactly the anomaly it owns, repairs to a state its own detector accepts,
stays quiet on healthy kernels), and the VMM half of the detection loop —
watchdog verdict → microreboot → ``vmm:<invariant>`` history record — is
pinned down.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.core.mercury import Mode
from repro.core.recovery import RecoveryManager
from repro.errors import HealingError
from repro.guestos.process import TaskState
from repro.scenarios.healing import (SelfHealer, default_sensors,
                                     _detect_frame_ref_skew,
                                     _detect_fs_corruption,
                                     _detect_proc_table_skew,
                                     _detect_runqueue_damage,
                                     _repair_frame_refs, _repair_fs,
                                     _repair_proc_table, _repair_runqueue)
from repro.watchdog import Watchdog


def _sensor(name):
    return next(s for s in default_sensors() if s.name == name)


# ---------------------------------------------------------------------------
# the four built-in detect/repair pairs, driven directly
# ---------------------------------------------------------------------------

def test_runqueue_pair(mercury):
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    assert not _detect_runqueue_damage(k)

    t = k.scheduler.current
    k.scheduler.runqueue.extend([t, t])  # duplicate pid
    assert _detect_runqueue_damage(k)
    _repair_runqueue(k, cpu)
    assert not _detect_runqueue_damage(k)
    assert [x.pid for x in k.scheduler.runqueue].count(t.pid) <= 1

    pid = k.syscall(cpu, "fork")
    zombie = k.procs.get(pid)
    zombie.state = TaskState.ZOMBIE
    assert _detect_runqueue_damage(k)
    _repair_runqueue(k, cpu)
    assert zombie not in k.scheduler.runqueue
    assert not _detect_runqueue_damage(k)


def test_proc_table_pair(mercury):
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    assert not _detect_proc_table_skew(k)

    pid = k.syscall(cpu, "fork")
    child = k.procs.get(pid)
    child.pid = pid + 500  # key/task disagreement
    assert _detect_proc_table_skew(k)
    _repair_proc_table(k, cpu)
    assert not _detect_proc_table_skew(k)
    assert k.procs.tasks[pid].pid == pid


def test_fs_metadata_pair(mercury):
    from repro.guestos.fs import BLOCK_SIZE
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    assert not _detect_fs_corruption(k)

    fd = k.syscall(cpu, "open", "/f", True)
    k.syscall(cpu, "write", fd, "x", 100)
    inode = k.fs.inodes["/f"]
    inode.size = 10_000_000
    inode.nlink = -2
    assert _detect_fs_corruption(k)
    _repair_fs(k, cpu)
    assert not _detect_fs_corruption(k)
    assert inode.size <= len(inode.blocks) * BLOCK_SIZE
    assert inode.nlink >= 0


def test_frame_refs_pair(mercury):
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    assert not _detect_frame_ref_skew(k)

    leaked = k.machine.memory.alloc(k.owner_id)
    k.vmem._frame_refs[leaked] = 3
    assert _detect_frame_ref_skew(k)
    _repair_frame_refs(k, cpu)
    assert not _detect_frame_ref_skew(k)
    assert leaked not in k.vmem._frame_refs
    # the repairer also returned the orphaned frame to the allocator
    assert k.machine.memory.owner_of(leaked) != k.owner_id


def test_each_sensor_ignores_the_other_anomalies(mercury):
    """Sensors are orthogonal: runqueue damage must not trip the fs or
    proc-table detectors and vice versa."""
    k = mercury.kernel
    t = k.scheduler.current
    k.scheduler.runqueue.extend([t, t])
    assert not _detect_proc_table_skew(k)
    assert not _detect_fs_corruption(k)
    assert not _detect_frame_ref_skew(k)
    _repair_runqueue(k, mercury.machine.boot_cpu)


def test_sensor_fire_counters(mercury):
    k = mercury.kernel
    healer = SelfHealer(mercury)
    t = k.scheduler.current
    k.scheduler.runqueue.extend([t, t])
    healer.scan()
    assert _sensor("runqueue").fires == 0  # fresh suite: per-instance count
    assert next(s for s in healer.sensors if s.name == "runqueue").fires == 1


# ---------------------------------------------------------------------------
# the VMM half of the loop: watchdog verdicts heal through a microreboot
# ---------------------------------------------------------------------------

def _vmm_stack(mercury):
    mercury.attach()
    mercury.host_guest(image_pages=8)
    watchdog = Watchdog(mercury, suspect_scans=1)
    recovery = RecoveryManager(mercury)
    return watchdog, recovery


def test_healer_consumes_pending_watchdog_verdict(mercury):
    watchdog, recovery = _vmm_stack(mercury)
    faults.inject_vmm_fault(faults.VMM_TRAP_VECTOR_DROPPED, mercury)
    assert watchdog.scan() is not None  # verdict now pending

    healer = SelfHealer(mercury)  # picks watchdog/recovery off mercury
    records = healer.scan()
    assert [r.sensor_name for r in records] == ["vmm:trap-table"]
    assert records[0].healed
    assert records[0].repair_cycles > 0
    assert healer.history == records
    assert watchdog.pending_verdict is None
    assert recovery.recoveries == 1
    assert mercury.mode is Mode.PARTIAL_VIRTUAL


def test_healer_runs_its_own_scan_when_none_pending(mercury):
    watchdog, recovery = _vmm_stack(mercury)
    faults.inject_vmm_fault(faults.VMM_REFCOUNT_BALLOON, mercury)
    assert watchdog.pending_verdict is None

    records = SelfHealer(mercury).scan()
    assert [r.sensor_name for r in records] == ["vmm:vo-refcount"]
    assert recovery.recoveries == 1


def test_one_pass_covers_both_damage_domains(mercury):
    """A single ``scan()`` heals VMM corruption *and* guest-OS damage —
    the 'one detection loop' contract."""
    watchdog, recovery = _vmm_stack(mercury)
    k = mercury.kernel
    k.scheduler.runqueue.extend([k.scheduler.current] * 2)
    faults.inject_vmm_fault(faults.VMM_GRANT_POISONED, mercury)

    records = SelfHealer(mercury).scan()
    names = [r.sensor_name for r in records]
    assert names == ["vmm:grant-refs", "runqueue"]
    assert all(r.healed for r in records)
    assert recovery.recoveries == 1


def test_healer_without_watchdog_skips_vmm_half(mercury):
    mercury.attach()
    assert SelfHealer(mercury).scan() == []  # no watchdog installed: guest
    # sensors only, and a healthy kernel scans clean


def test_failed_recovery_surfaces_as_healing_error(mercury, monkeypatch):
    watchdog, recovery = _vmm_stack(mercury)
    faults.inject_vmm_fault(faults.VMM_CHANNEL_WEDGED, mercury)
    watchdog.scan()

    def broken_reattach(cpu=None, wait=True):
        from repro.errors import RecoveryError
        raise RecoveryError("re-attach refused")

    monkeypatch.setattr(mercury, "attach", broken_reattach)
    healer = SelfHealer(mercury)
    with pytest.raises((HealingError, Exception)):
        healer.scan()
    assert recovery.recovery_failures == 1
