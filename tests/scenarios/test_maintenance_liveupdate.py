"""Online hardware maintenance (§6.3) and live kernel updating (§6.4)."""

import pytest

from repro import Machine, Mercury, small_config
from repro.core.mercury import Mode
from repro.errors import LiveUpdateError, ScenarioError
from repro.scenarios.liveupdate import KernelPatch, LiveUpdater
from repro.scenarios.maintenance import MaintenanceWindow


@pytest.fixture
def primary_standby():
    pm = Machine(small_config())
    primary = Mercury(pm)
    k = primary.create_kernel(name="primary-linux", image_pages=8)
    cpu = pm.boot_cpu
    fd = k.syscall(cpu, "open", "/workload", True)
    k.syscall(cpu, "write", fd, "running", 4096)
    k.syscall(cpu, "fsync", fd)
    sm = Machine(small_config(mem_kb=32768), clock=pm.clock)
    standby = Mercury(sm)
    standby.create_kernel(name="standby-linux", image_pages=8)
    pm.link_to(sm)
    return primary, standby


# ---------------------------------------------------------------------------
# maintenance
# ---------------------------------------------------------------------------

def test_maintenance_roundtrip(primary_standby):
    primary, standby = primary_standby
    window = MaintenanceWindow(primary, standby)
    maintained = []

    def do_maintenance():
        maintained.append(True)
        primary.machine.clock.advance(3_000_000_000)  # 1 s of work

    report = window.perform(do_maintenance)
    assert maintained == [True]
    # §6.3: back in native mode at full speed afterwards
    assert primary.mode is Mode.NATIVE
    assert primary.kernel.fs.exists("/workload")
    # standby no longer hosts the guest
    assert standby.guests == []


def test_maintenance_disruption_far_below_window(primary_standby):
    """The availability argument: app-visible pause (two stop-and-copy
    downtimes) must be orders of magnitude below the maintenance time."""
    primary, standby = primary_standby
    window = MaintenanceWindow(primary, standby)
    report = window.perform(
        lambda: primary.machine.clock.advance(3_000_000_000))
    assert report.maintenance_cycles >= 3_000_000_000
    assert report.disruption_cycles * 100 < report.maintenance_cycles
    assert report.disruption_ms() < 10


def test_maintenance_requires_shared_clock():
    a = Mercury(Machine(small_config()))
    a.create_kernel(name="a")
    b = Mercury(Machine(small_config()))
    b.create_kernel(name="b")
    with pytest.raises(ScenarioError):
        MaintenanceWindow(a, b)


def test_primary_survives_new_work_after_return(primary_standby):
    primary, standby = primary_standby
    MaintenanceWindow(primary, standby).perform(lambda: None)
    k = primary.kernel
    cpu = primary.machine.boot_cpu
    pid = k.syscall(cpu, "fork")
    k.run_and_reap(cpu, k.procs.get(pid))
    # and it can self-virtualize again
    primary.attach()
    primary.detach()


# ---------------------------------------------------------------------------
# live update
# ---------------------------------------------------------------------------

def test_liveupdate_applies_patch_transiently(mercury):
    up = LiveUpdater(mercury)
    rec = up.apply(KernelPatch(
        "getpid-v2", "getpid", lambda k, c, t: t.pid + 1000))
    assert mercury.mode is Mode.NATIVE         # VMM detached afterwards
    assert rec.attach_us > rec.detach_us > 0   # §7.4 asymmetry again
    cpu = mercury.machine.boot_cpu
    assert mercury.kernel.syscall(cpu, "getpid") == \
        mercury.kernel.scheduler.current.pid + 1000


def test_liveupdate_unknown_syscall_rejected(mercury):
    up = LiveUpdater(mercury)
    with pytest.raises(LiveUpdateError):
        up.apply(KernelPatch("bad", "no_such_call", lambda k, c, t: 0))


def test_liveupdate_validator_rolls_back(mercury):
    up = LiveUpdater(mercury)
    cpu = mercury.machine.boot_cpu
    original = mercury.kernel.syscall(cpu, "getpid")
    with pytest.raises(LiveUpdateError):
        up.apply(KernelPatch("broken", "getpid",
                             lambda k, c, t: -1,
                             validator=lambda k: False))
    assert mercury.mode is Mode.NATIVE
    assert mercury.kernel.syscall(cpu, "getpid") == original
    assert up.history[-1].rolled_back


def test_liveupdate_state_transform_runs(mercury):
    up = LiveUpdater(mercury)
    up.apply(KernelPatch(
        "add-flag", "getpid", lambda k, c, t: t.pid,
        state_transform=lambda k: setattr(k, "patched_flag", True)))
    assert mercury.kernel.patched_flag is True


def test_liveupdate_revert(mercury):
    up = LiveUpdater(mercury)
    patch = KernelPatch("v2", "getpid", lambda k, c, t: 777)
    up.apply(patch)
    cpu = mercury.machine.boot_cpu
    assert mercury.kernel.syscall(cpu, "getpid") == 777
    up.revert(patch)
    assert mercury.kernel.syscall(cpu, "getpid") != 777
    assert mercury.mode is Mode.NATIVE


def test_liveupdate_revert_unapplied_rejected(mercury):
    up = LiveUpdater(mercury)
    with pytest.raises(LiveUpdateError):
        up.revert(KernelPatch("ghost", "getpid", lambda k, c, t: 0))


def test_liveupdate_stacking_and_unwind(mercury):
    """Two patches to the same syscall; revert restores the original."""
    up = LiveUpdater(mercury)
    cpu = mercury.machine.boot_cpu
    original = mercury.kernel.syscall(cpu, "getpid")
    p1 = KernelPatch("v2", "getpid", lambda k, c, t: 1001)
    p2 = KernelPatch("v3", "getpid", lambda k, c, t: 1002)
    up.apply(p1)
    up.apply(p2)
    assert mercury.kernel.syscall(cpu, "getpid") == 1002
    up.revert(p2)  # _saved holds the pristine original
    assert mercury.kernel.syscall(cpu, "getpid") == original


def test_liveupdate_under_existing_vmm(mercury):
    """If the VMM is already attached (partial-virtual), the update uses
    it without detaching."""
    mercury.attach()
    up = LiveUpdater(mercury)
    rec = up.apply(KernelPatch("v2", "getpid", lambda k, c, t: 55))
    assert mercury.mode is Mode.PARTIAL_VIRTUAL
    assert rec.attach_us == 0.0
