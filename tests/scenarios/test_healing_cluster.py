"""Self-healing (§6.2) and HPC cluster availability (§6.5)."""

import pytest

from repro.core.mercury import Mode
from repro.errors import ScenarioError
from repro.guestos.process import TaskState
from repro.scenarios.cluster import HardwareMonitor, HpcCluster, NodeState
from repro.scenarios.healing import SelfHealer, Sensor, default_sensors


# ---------------------------------------------------------------------------
# healing
# ---------------------------------------------------------------------------

def test_clean_system_scans_clean(mercury):
    healer = SelfHealer(mercury)
    assert healer.scan() == []
    assert mercury.mode is Mode.NATIVE


def test_runqueue_duplicate_healed(mercury):
    k = mercury.kernel
    t = k.scheduler.current
    k.scheduler.runqueue.extend([t, t])
    records = SelfHealer(mercury).scan()
    assert [r.sensor_name for r in records] == ["runqueue"]
    assert records[0].healed
    pids = [x.pid for x in k.scheduler.runqueue]
    assert len(pids) == len(set(pids))
    assert mercury.mode is Mode.NATIVE  # VMM detached after healing


def test_zombie_on_runqueue_healed(mercury):
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    pid = k.syscall(cpu, "fork")
    child = k.procs.get(pid)
    child.state = TaskState.ZOMBIE   # died but left enqueued (the anomaly)
    records = SelfHealer(mercury).scan()
    assert records and records[0].healed
    assert child not in k.scheduler.runqueue


def test_proc_table_skew_healed(mercury):
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    pid = k.syscall(cpu, "fork")
    child = k.procs.get(pid)
    child.pid = pid + 500  # key/task disagreement
    records = SelfHealer(mercury).scan()
    assert any(r.sensor_name == "proc-table" and r.healed for r in records)
    assert k.procs.tasks[pid].pid == pid


def test_fs_corruption_healed(mercury):
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    fd = k.syscall(cpu, "open", "/f", True)
    k.syscall(cpu, "write", fd, "x", 100)
    inode = k.fs.inodes["/f"]
    inode.size = 10_000_000  # size beyond its blocks
    records = SelfHealer(mercury).scan()
    assert any(r.sensor_name == "fs-metadata" and r.healed for r in records)
    assert inode.size <= len(inode.blocks) * 4096


def test_frame_ref_skew_healed(mercury):
    k = mercury.kernel
    leaked = k.machine.memory.alloc(k.owner_id)
    k.vmem._frame_refs[leaked] = 3  # refcounted but mapped nowhere
    records = SelfHealer(mercury).scan()
    assert any(r.sensor_name == "frame-refs" and r.healed for r in records)
    assert leaked not in k.vmem._frame_refs


def test_healing_from_virtual_mode_stays_attached(mercury):
    mercury.attach()
    k = mercury.kernel
    t = k.scheduler.current
    k.scheduler.runqueue.extend([t, t])
    SelfHealer(mercury).scan()
    assert mercury.mode is Mode.PARTIAL_VIRTUAL


def test_custom_sensor(mercury):
    flag = {"bad": True}
    sensor = Sensor("custom",
                    detect=lambda k: flag["bad"],
                    repair=lambda k, c: flag.update(bad=False))
    records = SelfHealer(mercury, [sensor]).scan()
    assert records[0].healed
    assert sensor.fires == 1


def test_default_sensor_suite_complete():
    names = {s.name for s in default_sensors()}
    assert names == {"runqueue", "proc-table", "fs-metadata", "frame-refs"}


# ---------------------------------------------------------------------------
# cluster
# ---------------------------------------------------------------------------

def test_monitor_thresholds():
    m = HardwareMonitor()
    assert not m.predicts_failure()
    assert HardwareMonitor(temperature_c=90).predicts_failure()
    assert HardwareMonitor(fan_rpm=500).predicts_failure()
    assert HardwareMonitor(voltage_v=10).predicts_failure()
    assert HardwareMonitor(power_ok=False).predicts_failure()


def test_cluster_needs_two_nodes():
    with pytest.raises(ScenarioError):
        HpcCluster(num_nodes=1)


def test_evacuation_on_warning():
    cluster = HpcCluster(num_nodes=2)
    node = cluster.nodes[0]
    node.job_progress = 0
    for _ in range(5):
        node.run_job_step()
    node.monitor.temperature_c = 95.0
    standby = cluster.handle_warning(node)
    assert standby is cluster.nodes[1]
    assert node.state is NodeState.EVACUATED
    assert standby.job_progress == 5
    assert node.job_progress is None
    assert cluster.evacuations == 1


def test_evacuation_without_prediction_rejected():
    cluster = HpcCluster(num_nodes=2)
    with pytest.raises(ScenarioError):
        cluster.handle_warning(cluster.nodes[0])


def test_job_continues_on_standby():
    cluster = HpcCluster(num_nodes=2)
    node = cluster.nodes[0]
    node.job_progress = 0
    node.run_job_step()
    node.monitor.fan_rpm = 100.0
    standby = cluster.handle_warning(node)
    node.fail()
    standby.run_job_step()
    assert standby.job_progress == 2


def test_policy_self_virtualization_loses_nothing():
    cluster = HpcCluster(num_nodes=2)
    report = cluster.run_with_policy("self-virtualization",
                                     total_steps=20, fail_at_step=10)
    assert report.job_steps_lost == 0
    assert report.job_steps_completed == 20


def test_policy_restart_loses_everything_before_failure():
    cluster = HpcCluster(num_nodes=2)
    report = cluster.run_with_policy("restart", total_steps=20,
                                     fail_at_step=10)
    assert report.job_steps_lost == 10
    assert report.downtime_cycles > 0


def test_policy_comparison_ordering():
    """§6.5's argument quantified: sv < checkpoint < restart in lost
    work, and sv has the smallest downtime."""
    results = {}
    for policy in ("self-virtualization", "checkpoint", "restart"):
        cluster = HpcCluster(num_nodes=2)
        results[policy] = cluster.run_with_policy(
            policy, total_steps=30, fail_at_step=17, checkpoint_every=10)
    assert results["self-virtualization"].job_steps_lost == 0
    assert 0 < results["checkpoint"].job_steps_lost <= 10
    assert results["restart"].job_steps_lost == 17
    assert results["self-virtualization"].downtime_cycles < \
        results["restart"].downtime_cycles


def test_unknown_policy_rejected():
    cluster = HpcCluster(num_nodes=2)
    with pytest.raises(ScenarioError):
        cluster.run_with_policy("pray", total_steps=5, fail_at_step=2)


def test_no_healthy_standby_raises():
    cluster = HpcCluster(num_nodes=2)
    cluster.nodes[1].state = NodeState.FAILED
    cluster.nodes[0].monitor.power_ok = False
    with pytest.raises(ScenarioError):
        cluster.handle_warning(cluster.nodes[0])
