"""Periodic checkpointing schedule (§6.1 deployment)."""

import pytest

from repro.core.mercury import Mode
from repro.errors import CheckpointError
from repro.scenarios.schedule import CheckpointSchedule


def _advance_ms(mercury, ms):
    clock = mercury.machine.clock
    clock.advance(int(ms * 1000 * 3000))
    clock.run_due()


def test_keep_must_be_positive(mercury):
    with pytest.raises(CheckpointError):
        CheckpointSchedule(mercury, keep=0)


def test_take_now_and_latest(mercury):
    sched = CheckpointSchedule(mercury, period_ms=10)
    r = sched.take_now()
    assert sched.latest() is r
    assert r.image.num_frames > 0
    assert mercury.mode is Mode.NATIVE


def test_latest_before_any_checkpoint(mercury):
    with pytest.raises(CheckpointError):
        CheckpointSchedule(mercury).latest()


def test_timer_fires_periodically(mercury):
    sched = CheckpointSchedule(mercury, period_ms=5, keep=10)
    sched.start()
    for _ in range(3):
        _advance_ms(mercury, 5.5)
    sched.stop()
    assert len(sched.images) == 3
    seqs = [r.sequence for r in sched.images]
    assert seqs == sorted(seqs)


def test_retention_bounded(mercury):
    sched = CheckpointSchedule(mercury, period_ms=5, keep=2)
    for _ in range(5):
        sched.take_now()
    assert len(sched.images) == 2
    assert sched.images[-1].sequence == 4  # newest retained


def test_stop_prevents_further_checkpoints(mercury):
    sched = CheckpointSchedule(mercury, period_ms=5)
    sched.start()
    sched.stop()
    _advance_ms(mercury, 20)
    assert sched.images == []


def test_recover_latest(mercury):
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    fd = k.syscall(cpu, "open", "/persist", True)
    k.syscall(cpu, "write", fd, "v1", 100)
    sched = CheckpointSchedule(mercury)
    sched.take_now()
    k.fs.inodes.clear()  # failure
    sched.recover()
    assert k.fs.exists("/persist")


def test_recover_specific_sequence(mercury):
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    sched = CheckpointSchedule(mercury, keep=5)
    k.syscall(cpu, "open", "/first", True)
    sched.take_now()     # seq 0: has /first
    k.syscall(cpu, "open", "/second", True)
    sched.take_now()     # seq 1: has both
    sched.recover(sequence=0)
    assert k.fs.exists("/first")
    assert not k.fs.exists("/second")
    with pytest.raises(CheckpointError):
        sched.recover(sequence=99)


def test_work_at_risk_bounded_by_period(mercury):
    sched = CheckpointSchedule(mercury, period_ms=5, keep=3)
    sched.start()
    _advance_ms(mercury, 5.5)   # first checkpoint fired
    _advance_ms(mercury, 2)     # partway into the next period
    at_risk_ms = sched.work_at_risk_cycles() / 3_000_000
    assert at_risk_ms <= 5.6    # less than ~one period (+checkpoint cost)
    sched.stop()


def test_workload_between_checkpoints_recoverable(mercury):
    """End to end: periodic checkpoints bound the damage of a failure."""
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    sched = CheckpointSchedule(mercury, period_ms=5, keep=3)
    fd = k.syscall(cpu, "open", "/journal", True)
    for i in range(3):
        k.syscall(cpu, "write", fd, f"batch-{i}", 4096)
        sched.take_now()
    # more writes after the last checkpoint, then a crash
    k.syscall(cpu, "write", fd, "batch-lost", 4096)
    k.fs.inodes.clear()
    k.procs.tasks.clear()
    sched.recover()
    st = k.syscall(cpu, "stat", "/journal")
    assert st["size"] == 3 * 4096   # the unlucky batch is lost; rest intact
