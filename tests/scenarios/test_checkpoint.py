"""Checkpoint/restart (§6.1): fidelity, rollback, disaster recovery."""

import pytest

from repro import Machine, Mercury, small_config
from repro.core.mercury import Mode
from repro.errors import CheckpointError
from repro.params import PAGE_SIZE
from repro.scenarios.checkpoint import (checkpoint, restore, restore_as_guest)


def _workload(mercury):
    """Some distinctive state: processes, a file, mapped+written memory."""
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    fd = k.syscall(cpu, "open", "/state", True)
    k.syscall(cpu, "write", fd, "precious", 4096)
    k.syscall(cpu, "fsync", fd)
    pid = k.syscall(cpu, "fork")
    task = k.scheduler.current
    base = k.syscall(cpu, "mmap", 2 * PAGE_SIZE, True)
    frame = k.vmem.access(cpu, task, base, write=True)
    mercury.machine.memory.write(frame, "in-memory-marker")
    return fd, pid, base, frame


def test_checkpoint_attaches_and_detaches(mercury):
    _workload(mercury)
    assert mercury.mode is Mode.NATIVE
    img = checkpoint(mercury)
    assert mercury.mode is Mode.NATIVE  # §6.1: VMM detached afterwards
    assert img.num_frames > 0
    assert img.kernel_name == mercury.kernel.name


def test_checkpoint_from_virtual_mode_stays_virtual(mercury):
    _workload(mercury)
    mercury.attach()
    checkpoint(mercury)
    assert mercury.mode is Mode.PARTIAL_VIRTUAL


def test_rollback_restores_fs_and_processes(mercury):
    fd, pid, base, frame = _workload(mercury)
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    img = checkpoint(mercury)
    # catastrophic damage
    k.fs.inodes.clear()
    k.procs.tasks.clear()
    restore(img, mercury)
    assert k.fs.exists("/state")
    assert pid in k.procs.tasks
    assert k.scheduler.current is not None
    k.syscall(cpu, "lseek", fd, 0)
    assert k.syscall(cpu, "read", fd, 4096) == ["precious"]


def test_rollback_restores_memory_contents(mercury):
    fd, pid, base, frame = _workload(mercury)
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    img = checkpoint(mercury)
    task = k.scheduler.current
    new_frame = k.vmem.access(cpu, task, base, write=True)
    k.machine.memory.write(new_frame, "corrupted")
    restore(img, mercury)
    task = k.scheduler.current
    restored_frame = k.vmem.access(cpu, task, base, write=False)
    assert k.machine.memory.read(restored_frame) == "in-memory-marker"


def test_rollback_discards_post_checkpoint_state(mercury):
    _workload(mercury)
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    img = checkpoint(mercury)
    k.syscall(cpu, "open", "/after", True)
    restore(img, mercury)
    assert not k.fs.exists("/after")


def test_restore_onto_fresh_machine(mercury):
    """Hardware failure: the snapshot moves to a healthy machine."""
    _workload(mercury)
    img = checkpoint(mercury)
    m2 = Machine(small_config())
    mc2 = Mercury(m2)
    restored = restore(img, mc2, fresh_kernel=True)
    assert restored.machine is m2
    assert restored.fs.exists("/state")
    assert len(restored.procs.tasks) == len(mercury.kernel.procs.tasks)
    # the restored kernel is alive: run new work on it
    cpu2 = m2.boot_cpu
    pid = restored.syscall(cpu2, "fork")
    restored.run_and_reap(cpu2, restored.procs.get(pid))


def test_restore_as_guest_on_partial_virtual_host(mercury):
    _workload(mercury)
    img = checkpoint(mercury)
    host_machine = Machine(small_config(mem_kb=32768))
    host = Mercury(host_machine)
    host.create_kernel(name="host-linux", image_pages=8)
    host.attach()
    guest = restore_as_guest(img, host)
    assert guest in host.guests
    assert guest.fs.exists("/state")
    # the guest does I/O through the host's split drivers
    cpu = host_machine.boot_cpu
    fd = guest.syscall(cpu, "open", "/state", False)
    guest.syscall(cpu, "write", fd, "updated", 10)
    guest.syscall(cpu, "fsync", fd)


def test_restore_as_guest_requires_attached_host(mercury):
    img = checkpoint(mercury)
    host = Mercury(Machine(small_config()))
    host.create_kernel(name="h")
    with pytest.raises(CheckpointError):
        restore_as_guest(img, host)


def test_checkpoint_charges_per_frame(mercury):
    cpu = mercury.machine.boot_cpu
    t0 = cpu.rdtsc()
    img = checkpoint(mercury, cpu)
    from repro.scenarios.checkpoint import CYC_SNAPSHOT_PER_FRAME
    assert cpu.rdtsc() - t0 >= img.num_frames * CYC_SNAPSHOT_PER_FRAME


def test_frame_accounting_after_rollback(mercury):
    """Restore must not leak or double-book frames."""
    _workload(mercury)
    img = checkpoint(mercury)
    free_before = mercury.machine.memory.free_frames
    restore(img, mercury)
    assert mercury.machine.memory.free_frames == free_before
