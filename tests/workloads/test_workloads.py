"""Workload sanity: each suite runs, reports sane units, and responds to
its parameters."""

import pytest

from repro import Machine, small_config
from repro.bench.configs import BareMetalVO
from repro.guestos.kernel import Kernel
from repro.workloads.dbench import run_dbench
from repro.workloads.iperf import run_iperf, run_ping
from repro.workloads.kbuild import run_kbuild
from repro.workloads.lmbench import (LmbenchResults, bench_ctx, bench_fork,
                                     bench_mmap, bench_page_fault,
                                     bench_prot_fault, run_lmbench)
from repro.workloads.osdb import run_osdb_ir


@pytest.fixture
def native():
    m = Machine(small_config(mem_kb=131072))
    k = Kernel(m, BareMetalVO(m), name="wl-native")
    k.boot(image_pages=64)
    return k, m.boot_cpu


def test_lmbench_full_suite_rows(native):
    k, cpu = native
    results = run_lmbench(k, cpu)
    assert set(results.rows) == set(LmbenchResults.ROW_ORDER)
    assert all(v > 0 for v in results.rows.values())
    ordered = results.ordered()
    assert [name for name, _ in ordered] == list(LmbenchResults.ROW_ORDER)


def test_lmbench_fork_deterministic(native):
    k, cpu = native
    a = bench_fork(k, cpu, iters=2)
    b = bench_fork(k, cpu, iters=2)
    assert a == pytest.approx(b, rel=0.05)  # steady state, no randomness


def test_lmbench_ctx_grows_with_working_set(native):
    k, cpu = native
    c0 = bench_ctx(k, cpu, 2, 0, rounds=2)
    c16 = bench_ctx(k, cpu, 2, 16, rounds=2)
    c64 = bench_ctx(k, cpu, 2, 64, rounds=2)
    assert c0 < c16 < c64


def test_lmbench_mmap_scales_with_size(native):
    k, cpu = native
    small = bench_mmap(k, cpu, size_mb=2, iters=1)
    large = bench_mmap(k, cpu, size_mb=8, iters=1)
    assert large > 2 * small


def test_lmbench_fault_benchmarks_leave_no_residue(native):
    k, cpu = native
    task = k.scheduler.current
    vmas_before = len(task.vmas)
    bench_prot_fault(k, cpu, iters=8)
    bench_page_fault(k, cpu, iters=8)
    assert len(task.vmas) == vmas_before


def test_osdb_reports_throughput(native):
    k, cpu = native
    r = run_osdb_ir(k, cpu, rows=512, queries=30)
    assert r.queries == 30
    assert r.queries_per_second > 0
    assert r.cache_hits > 0


def test_osdb_deterministic(native):
    k, cpu = native
    a = run_osdb_ir(k, cpu, rows=256, queries=20, seed=5)
    m2 = Machine(small_config(mem_kb=131072))
    k2 = Kernel(m2, BareMetalVO(m2), name="wl2")
    k2.boot(image_pages=64)
    b = run_osdb_ir(k2, m2.boot_cpu, rows=256, queries=20, seed=5)
    assert a.elapsed_us == pytest.approx(b.elapsed_us, rel=1e-6)


def test_dbench_reports_throughput(native):
    k, cpu = native
    r = run_dbench(k, cpu, clients=2, files_per_client=3)
    assert r.throughput_mb_s > 0
    assert r.bytes_moved > 0
    assert r.ops > 0


def test_dbench_more_clients_more_bytes(native):
    k, cpu = native
    r1 = run_dbench(k, cpu, clients=1, files_per_client=2)
    r2 = run_dbench(k, cpu, clients=3, files_per_client=2)
    assert r2.bytes_moved == 3 * r1.bytes_moved


def test_kbuild_compiles_and_links(native):
    k, cpu = native
    r = run_kbuild(k, cpu, files=8, link_every=4)
    assert r.files_compiled == 8
    assert r.links == 2
    assert r.elapsed_s > 0
    # objects exist in the guest FS
    assert k.fs.exists("/obj/file0.o")
    assert k.fs.exists("/obj/built-in-2.a")


def test_kbuild_time_scales_with_files(native):
    k, cpu = native
    t4 = run_kbuild(k, cpu, files=4).elapsed_us
    t8 = run_kbuild(k, cpu, files=8).elapsed_us
    assert t8 > 1.5 * t4


def _net_pair():
    a = Machine(small_config())
    b = Machine(small_config(), clock=a.clock)
    a.link_to(b)
    ka = Kernel(a, BareMetalVO(a), name="send")
    kb = Kernel(b, BareMetalVO(b), name="recv")
    ka.boot(image_pages=8)
    kb.boot(image_pages=8)
    return ka, kb


def test_iperf_udp_near_wire_rate_native():
    ka, kb = _net_pair()
    r = run_iperf(ka, kb, proto="udp", total_bytes=512 * 1024)
    assert r.bytes_sent == 512 * 1024
    # a native sender on a gigabit-class link: hundreds of Mbit/s
    assert 300 < r.mbit_s < 1100


def test_iperf_tcp_below_udp():
    ka, kb = _net_pair()
    udp = run_iperf(ka, kb, proto="udp", total_bytes=256 * 1024)
    tcp = run_iperf(ka, kb, proto="tcp", total_bytes=256 * 1024)
    assert tcp.mbit_s <= udp.mbit_s  # ACK window stalls cost something


def test_ping_mean_of_counts():
    ka, kb = _net_pair()
    rtt = run_ping(ka, kb, count=4)
    assert rtt > 0
    assert kb.net.icmp_replies == 4
