"""OSDB mixed (read/update) phase."""

import pytest

from repro import Machine, small_config
from repro.bench.configs import BareMetalVO, build_config
from repro.guestos.kernel import Kernel
from repro.workloads.osdb import run_osdb_ir, run_osdb_mixed


@pytest.fixture
def native():
    m = Machine(small_config(mem_kb=131072))
    k = Kernel(m, BareMetalVO(m), name="osdb")
    k.boot(image_pages=32)
    return k, m.boot_cpu


def test_mixed_runs_and_reports(native):
    k, cpu = native
    r = run_osdb_mixed(k, cpu, rows=512, transactions=40)
    assert r.queries == 40
    assert r.elapsed_us > 0
    assert r.queries_per_second > 0


def test_mixed_commits_journal(native):
    k, cpu = native
    commits0 = k.fs.journal_commits
    run_osdb_mixed(k, cpu, rows=512, transactions=60, update_ratio=0.5,
                   commit_every=5)
    assert k.fs.journal_commits > commits0


def test_mixed_updates_reach_disk(native):
    k, cpu = native
    run_osdb_mixed(k, cpu, rows=256, transactions=40, update_ratio=1.0,
                   commit_every=4)
    heap = k.fs.inodes["/pgdata/heap"]
    on_disk = [b for b in heap.blocks if b in k.machine.disk.blocks]
    assert on_disk, "committed updates never hit the platter"


def test_mixed_slower_than_pure_ir_per_txn(native):
    """Updates + commits must cost more per transaction than pure reads."""
    k, cpu = native
    ir = run_osdb_ir(k, cpu, rows=512, queries=40)
    m2 = Machine(small_config(mem_kb=131072))
    k2 = Kernel(m2, BareMetalVO(m2), name="osdb2")
    k2.boot(image_pages=32)
    mixed = run_osdb_mixed(k2, m2.boot_cpu, rows=512, transactions=40,
                           update_ratio=0.5, commit_every=5)
    assert mixed.elapsed_us / 40 > ir.elapsed_us / 40


def test_mixed_deterministic(native):
    k, cpu = native
    a = run_osdb_mixed(k, cpu, rows=256, transactions=20, seed=3)
    m2 = Machine(small_config(mem_kb=131072))
    k2 = Kernel(m2, BareMetalVO(m2), name="osdb3")
    k2.boot(image_pages=32)
    b = run_osdb_mixed(k2, m2.boot_cpu, rows=256, transactions=20, seed=3)
    assert a.elapsed_us == b.elapsed_us


def test_mixed_virtualization_penalty():
    """The mixed phase still shows a virtualization loss, though smaller
    than pure IR: the fsync disk waits are mode-independent and dilute the
    CPU-side penalty."""
    scores = {}
    for key in ("N-L", "X-0"):
        sut = build_config(key, small_config(mem_kb=131072), image_pages=32)
        r = run_osdb_mixed(sut.kernel, sut.cpu, rows=512, transactions=40)
        scores[key] = r.queries_per_second
    assert scores["X-0"] < 0.97 * scores["N-L"]
