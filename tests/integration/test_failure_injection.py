"""Failure injection and resource-exhaustion edge cases.

The dependability claims only mean something if the system degrades
cleanly when resources run out or components misbehave: exhausted memory,
overrun rings, aborted migrations, dead backends.
"""

import pytest

from repro import Machine, Mercury, small_config
from repro.core.mercury import Mode
from repro.core.native_vo import NativeVO
from repro.errors import (HypercallError, OutOfMemory, PageValidationError,
                          RingError)
from repro.guestos.kernel import Kernel
from repro.params import PAGE_SIZE


# ---------------------------------------------------------------------------
# memory exhaustion
# ---------------------------------------------------------------------------

def test_mmap_populate_oom_surfaces_cleanly():
    machine = Machine(small_config(mem_kb=1024))  # 256 frames, tiny
    k = Kernel(machine, NativeVO(machine), name="tiny")
    k.boot(image_pages=4)
    cpu = machine.boot_cpu
    with pytest.raises(OutOfMemory):
        k.syscall(cpu, "mmap", 64 * 1024 * 1024, True)
    # the kernel is still alive afterwards
    assert k.syscall(cpu, "getpid") >= 1


def test_fork_bomb_hits_oom_not_corruption():
    machine = Machine(small_config(mem_kb=2048))
    k = Kernel(machine, NativeVO(machine), name="bomb")
    k.boot(image_pages=16)
    cpu = machine.boot_cpu
    with pytest.raises(OutOfMemory):
        for _ in range(10_000):
            k.syscall(cpu, "fork")
    # whatever was created is still consistent
    for task in k.procs.live_tasks():
        assert task.aspace.mapped_count() >= 0


def test_attach_survives_after_prior_oom(mercury):
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    with pytest.raises(OutOfMemory):
        k.syscall(cpu, "mmap", 1 << 34, True)
    rec = mercury.attach()
    assert rec is not None and mercury.mode is Mode.PARTIAL_VIRTUAL
    mercury.detach()


# ---------------------------------------------------------------------------
# isolation under attack
# ---------------------------------------------------------------------------

def test_guest_cannot_map_foreign_frame_via_hypercall(mercury):
    """A (buggy or malicious) guest trying to map another owner's frame is
    stopped by validation — in every virtual-mode path."""
    from repro.hw.paging import Pte
    mercury.attach()
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    foreign = mercury.machine.memory.alloc(777)
    aspace = k.scheduler.current.aspace
    with pytest.raises(PageValidationError):
        k.vo.set_pte(cpu, aspace, 0x6666_0000, Pte(frame=foreign))
    # the mapping did not happen
    assert aspace.get_pte(0x6666_0000) is None
    mercury.detach()


def test_guest_cannot_selfmap_its_page_tables_writable(mercury):
    from repro.hw.paging import Pte
    mercury.attach()
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    aspace = k.scheduler.current.aspace
    with pytest.raises(PageValidationError):
        k.vo.set_pte(cpu, aspace, 0x6666_0000,
                     Pte(frame=aspace.pgd_frame, writable=True))
    mercury.detach()


def test_hosted_guest_cannot_touch_host_devices(mercury):
    from repro.hw.devices import BlockRequest
    mercury.attach()
    guest = mercury.host_guest()
    cpu = mercury.machine.boot_cpu
    with pytest.raises(HypercallError):
        guest.vo.disk_submit(cpu, BlockRequest(op="read", block=0))


# ---------------------------------------------------------------------------
# transport failures
# ---------------------------------------------------------------------------

def test_ring_overrun_is_an_error_not_corruption():
    from repro.vmm.rings import IoRing
    ring = IoRing(size=2)
    ring.push_request("a")
    ring.push_request("b")
    with pytest.raises(RingError):
        ring.push_request("c")
    # the two queued requests are intact
    assert ring.pop_request() == "a"
    assert ring.pop_request() == "b"
    ring.check_invariants()


def test_migration_failure_leaves_target_clean():
    """If migration prerequisites fail, neither side is half-migrated."""
    from repro.errors import MigrationError
    from repro.scenarios.migration import LiveMigration

    src_machine = Machine(small_config())
    src = Mercury(src_machine)
    src.create_kernel(name="src")
    dst = Mercury(Machine(small_config(), clock=src_machine.clock))
    dst.create_kernel(name="dst")
    dst.attach()
    # source never entered full-virtual mode: refused up front
    with pytest.raises(MigrationError):
        LiveMigration(src, dst).run()
    assert dst.guests == []
    assert src.mode is Mode.NATIVE
    assert len(src.kernel.procs.live_tasks()) == 1


def test_machine_failure_flag_is_inspectable():
    from repro.scenarios.cluster import HpcCluster
    cluster = HpcCluster(num_nodes=2)
    node = cluster.nodes[0]
    node.fail()
    assert node.machine.failed
    from repro.scenarios.cluster import NodeState
    assert node.state is NodeState.FAILED
    # the healthy peer is unaffected
    assert not cluster.nodes[1].machine.failed


# ---------------------------------------------------------------------------
# switch-engine edge cases
# ---------------------------------------------------------------------------

def test_switch_request_while_retry_pending_coalesces(mercury):
    """Two requests while busy: both resolve into one committed switch."""
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    k.vo.enter(cpu)
    mercury.attach(wait=False)
    mercury.engine.request(  # a second, redundant request
        __import__("repro.core.switch", fromlist=["Direction"]).Direction.TO_VIRTUAL)
    k.vo.exit(cpu)
    mercury._drain_until_committed(0)
    # drain the leftover duplicate retry too: it must be a harmless no-op
    mercury.machine.clock.drain_until_idle()
    mercury.machine.poll()
    committed = [r for r in mercury.engine.records]
    assert len(committed) == 1
    assert mercury.mode is Mode.PARTIAL_VIRTUAL


def test_checkpoint_of_empty_kernel(mercury):
    """Degenerate but legal: checkpoint right after boot, restore works."""
    from repro.scenarios.checkpoint import checkpoint, restore
    img = checkpoint(mercury)
    restore(img, mercury)
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    pid = k.syscall(cpu, "fork")
    k.run_and_reap(cpu, k.procs.get(pid))
