"""Application transparency across mode switches — the paper's central
promise: 'without disturbing the running applications' (§1).

A workload starts in one mode, the OS switches underneath it (possibly
repeatedly), and the workload's observable results must be exactly what an
unswitched run produces.
"""

import pytest

from repro import Machine, Mercury, small_config
from repro.guestos.fs import BLOCK_SIZE
from repro.params import PAGE_SIZE


@pytest.fixture
def rig():
    machine = Machine(small_config(mem_kb=65536))
    mc = Mercury(machine)
    k = mc.create_kernel(image_pages=16)
    return mc, k, machine.boot_cpu


def test_open_files_survive_switches(rig):
    mc, k, cpu = rig
    fd = k.syscall(cpu, "open", "/log", True)
    k.syscall(cpu, "write", fd, "entry-1", BLOCK_SIZE)
    mc.attach()
    k.syscall(cpu, "write", fd, "entry-2", BLOCK_SIZE)
    mc.detach()
    k.syscall(cpu, "write", fd, "entry-3", BLOCK_SIZE)
    k.syscall(cpu, "lseek", fd, 0)
    got = [k.syscall(cpu, "read", fd, BLOCK_SIZE)[0] for _ in range(3)]
    assert got == ["entry-1", "entry-2", "entry-3"]


def test_process_tree_survives_switches(rig):
    mc, k, cpu = rig
    pids = [k.syscall(cpu, "fork") for _ in range(3)]
    mc.attach()
    assert sorted(t.pid for t in k.procs.live_tasks()
                  if t.pid in pids) == sorted(pids)
    for pid in pids:
        k.run_and_reap(cpu, k.procs.get(pid))
    mc.detach()
    assert len(k.procs.live_tasks()) == 1


def test_mapped_memory_survives_switches(rig):
    mc, k, cpu = rig
    task = k.scheduler.current
    base = k.syscall(cpu, "mmap", 2 * PAGE_SIZE, True)
    frame = k.vmem.access(cpu, task, base, write=True)
    k.machine.memory.write(frame, "sacred-bytes")
    mc.attach()
    assert k.vmem.access(cpu, task, base, write=False) == frame
    assert k.machine.memory.read(frame) == "sacred-bytes"
    mc.detach()
    assert k.vmem.access(cpu, task, base, write=False) == frame
    assert k.machine.memory.read(frame) == "sacred-bytes"


def test_cow_semantics_identical_across_modes(rig):
    """A fork in native mode, a COW break in virtual mode: exactly the
    same sharing outcome as an unswitched run."""
    mc, k, cpu = rig
    parent = k.scheduler.current
    vaddr = next(iter(parent.aspace.mapped_vaddrs()))
    pid = k.syscall(cpu, "fork")
    child = k.procs.get(pid)
    mc.attach()  # switch with COW state outstanding
    k.switch_to(cpu, child)
    k.vmem.access(cpu, child, vaddr, write=True)
    assert child.aspace.get_pte(vaddr).frame != \
        parent.aspace.get_pte(vaddr).frame
    mc.detach()


def test_workload_results_identical_switched_vs_not():
    """The decisive check: a deterministic workload computes the same
    *results* whether or not switches happen underneath it (only the
    timing differs)."""
    def workload(k, cpu, mc=None):
        out = []
        fd = k.syscall(cpu, "open", "/out", True)
        for i in range(6):
            if mc is not None and i == 2:
                mc.attach()
            if mc is not None and i == 4:
                mc.detach()
            pid = k.syscall(cpu, "fork")
            k.run_and_reap(cpu, k.procs.get(pid))
            k.syscall(cpu, "write", fd, f"row-{i}-pid-{pid}", BLOCK_SIZE)
        k.syscall(cpu, "lseek", fd, 0)
        for _ in range(6):
            out.append(k.syscall(cpu, "read", fd, BLOCK_SIZE)[0])
        return out

    m1 = Machine(small_config(mem_kb=65536))
    mc1 = Mercury(m1)
    k1 = mc1.create_kernel(image_pages=16)
    plain = workload(k1, m1.boot_cpu)

    m2 = Machine(small_config(mem_kb=65536))
    mc2 = Mercury(m2)
    k2 = mc2.create_kernel(image_pages=16)
    switched = workload(k2, m2.boot_cpu, mc2)

    assert plain == switched


def test_many_roundtrips_no_state_drift(rig):
    mc, k, cpu = rig
    free0 = None
    for i in range(8):
        mc.attach()
        mc.detach()
        pid = k.syscall(cpu, "fork")
        k.run_and_reap(cpu, k.procs.get(pid))
        free = k.machine.memory.free_frames
        if free0 is None:
            free0 = free
        else:
            assert free == free0  # no frame leak per cycle
    assert len(mc.switch_records) == 16
