"""Tracing is observation-only.

The tracer never charges cycles or touches simulated state, so running the
same deterministic workload with tracing enabled must produce *identical*
results and an identical metrics snapshot (modulo the two trace counters
themselves) as running it with tracing disabled.
"""

from __future__ import annotations

import dataclasses

from repro import trace
from repro.bench.configs import build_config
from repro.metrics import MetricsCollector, MetricsSnapshot
from repro.workloads.iperf import run_iperf
from repro.workloads.kbuild import run_kbuild


def _scrub(snap: MetricsSnapshot) -> MetricsSnapshot:
    """Zero the counters that legitimately differ when a tracer is on."""
    snap = dataclasses.replace(snap)
    snap.trace_events = 0
    snap.trace_dropped = 0
    return snap


def _kbuild(traced: bool):
    sut = build_config("M-V")
    collector = MetricsCollector(sut.machine, kernel=sut.kernel,
                                 vmm=sut.vmm, mercury=sut.mercury)
    if traced:
        with trace.tracing(sut.machine):
            result = run_kbuild(sut.kernel, sut.cpu, files=6)
    else:
        result = run_kbuild(sut.kernel, sut.cpu, files=6)
    return result, _scrub(collector.snapshot())


def _iperf(traced: bool):
    sut = build_config("X-U")
    collector = MetricsCollector(sut.machine, kernel=sut.kernel,
                                 vmm=sut.vmm, mercury=sut.mercury)
    if traced:
        with trace.tracing(sut.machine):
            result = run_iperf(sut.kernel, sut.peer_kernel, proto="tcp",
                               total_bytes=256 * 1024)
    else:
        result = run_iperf(sut.kernel, sut.peer_kernel, proto="tcp",
                           total_bytes=256 * 1024)
    return result, _scrub(collector.snapshot())


def _switch_roundtrips(traced: bool):
    sut = build_config("M-N")
    collector = MetricsCollector(sut.machine, kernel=sut.kernel,
                                 vmm=sut.vmm, mercury=sut.mercury)
    records = []
    if traced:
        with trace.tracing(sut.machine):
            for _ in range(3):
                records.append(sut.mercury.attach().cycles)
                records.append(sut.mercury.detach().cycles)
    else:
        for _ in range(3):
            records.append(sut.mercury.attach().cycles)
            records.append(sut.mercury.detach().cycles)
    return records, _scrub(collector.snapshot())


def test_kbuild_identical_with_and_without_tracing():
    plain_result, plain_snap = _kbuild(traced=False)
    traced_result, traced_snap = _kbuild(traced=True)
    assert traced_result == plain_result
    assert traced_snap == plain_snap


def test_iperf_identical_with_and_without_tracing():
    plain_result, plain_snap = _iperf(traced=False)
    traced_result, traced_snap = _iperf(traced=True)
    assert traced_result == plain_result
    assert traced_snap == plain_snap


def test_switch_latency_identical_with_and_without_tracing():
    """The paper's headline number itself (§7.4 switch cycles) must not
    move by a single cycle when the switch is being traced."""
    plain_cycles, plain_snap = _switch_roundtrips(traced=False)
    traced_cycles, traced_snap = _switch_roundtrips(traced=True)
    assert traced_cycles == plain_cycles
    assert traced_snap == plain_snap
