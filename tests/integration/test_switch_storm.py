"""Switch-storm stress: random interleavings of attach/detach requests,
workload syscalls, and fault (re)arming.

The property (§4.3 + §8): no matter how switches, retries, aborts and
injected faults interleave, the kernel always lands in exactly one
well-defined mode — NATIVE or PARTIAL_VIRTUAL — with the full invariant
suite green, and stays usable (one clean switch round-trip still works).

Faults are drawn from the switch-site registry, so a newly added site is
automatically storm-tested too.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Machine, Mercury, faults, small_config
from repro.core.invariants import check_all
from repro.core.mercury import Mode
from repro.core.switch import Direction
from repro.errors import ReproError
from repro.metrics import MetricsCollector
from repro.params import PAGE_SIZE

#: the storm runs on one CPU, so only the UP-reachable sites are armable
ARMABLE = [s.name for s in faults.SWITCH_SITES if not s.smp_only]

SIMPLE_OPS = st.sampled_from([
    "fork", "reap", "mmap", "touch",
    "attach", "detach", "request-attach", "request-detach",
    "drain", "clear-faults",
])
ARM_OPS = st.tuples(st.just("arm"), st.sampled_from(ARMABLE),
                    st.integers(min_value=1, max_value=3),
                    st.sampled_from([1, 2, None]))
OPS = st.one_of(SIMPLE_OPS, ARM_OPS)


def _fresh() -> Mercury:
    mercury = Mercury(Machine(small_config(mem_kb=32768)))
    mercury.create_kernel(image_pages=8)
    return mercury


def _apply(mercury: Mercury, plan: faults.FaultPlan, op, state) -> None:
    kernel = mercury.kernel
    cpu = mercury.machine.boot_cpu
    if isinstance(op, tuple):
        _, site_name, trigger_at, times = op
        plan.arm(site_name, trigger_at=trigger_at, times=times)
        return
    if op == "clear-faults":
        plan.disarm_all()
    elif op == "fork" and len(state["children"]) < 4:
        pid = kernel.syscall(cpu, "fork")
        state["children"].append(kernel.procs.get(pid))
    elif op == "reap" and state["children"]:
        kernel.run_and_reap(cpu, state["children"].pop())
    elif op == "mmap":
        kernel.syscall(cpu, "mmap", 2 * PAGE_SIZE, True)
    elif op == "touch":
        base = kernel.syscall(cpu, "mmap", PAGE_SIZE)
        kernel.vmem.access(cpu, kernel.scheduler.current, base, write=True)
    elif op == "attach" and mercury.mode is Mode.NATIVE:
        mercury.attach()
    elif op == "detach" and mercury.mode is not Mode.NATIVE:
        mercury.detach()
    elif op == "request-attach":
        # raw request, no drain: leaves retry timers in flight on purpose
        mercury.engine.request(Direction.TO_VIRTUAL, cpu)
    elif op == "request-detach":
        mercury.engine.request(Direction.TO_NATIVE, cpu)
    elif op == "drain":
        mercury.machine.clock.drain_until_idle(max_events=5)
        mercury.machine.poll()


def _settle(mercury: Mercury) -> None:
    """Fault-free quiesce: let every leftover retry timer run to its end."""
    faults.clear_plan()
    for _ in range(200):
        if mercury.machine.clock.next_deadline() is None:
            break
        try:
            mercury.machine.clock.drain_until_idle(max_events=10)
            mercury.machine.poll()
        except ReproError:
            pass


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(OPS, max_size=15))
def test_storm_always_settles_into_a_consistent_mode(ops):
    mercury = _fresh()
    plan = faults.FaultPlan()
    state = {"children": []}
    try:
        with faults.injected(plan):
            for op in ops:
                try:
                    _apply(mercury, plan, op, state)
                except ReproError:
                    # aborted/vetoed operations are allowed; torn state is not
                    pass
                assert mercury.mode in (Mode.NATIVE, Mode.PARTIAL_VIRTUAL)
    finally:
        faults.clear_plan()
    _settle(mercury)

    # the property: exactly one well-defined mode, all invariants green
    assert mercury.mode in (Mode.NATIVE, Mode.PARTIAL_VIRTUAL)
    violations = check_all(mercury)
    assert violations == [], violations

    # and the machine is still serviceable: a clean round-trip commits
    if mercury.mode is Mode.NATIVE:
        assert mercury.attach() is not None
        assert mercury.detach() is not None
    else:
        assert mercury.detach() is not None
        assert mercury.attach() is not None
    assert check_all(mercury) == []


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(OPS, max_size=12))
def test_storm_metrics_never_go_inconsistent(ops):
    """Accounting sanity under the same storm: counters are monotone and
    agree with each other."""
    mercury = _fresh()
    plan = faults.FaultPlan()
    state = {"children": []}
    try:
        with faults.injected(plan):
            for op in ops:
                try:
                    _apply(mercury, plan, op, state)
                except ReproError:
                    pass
    finally:
        faults.clear_plan()
    _settle(mercury)

    snap = MetricsCollector(mercury.machine, kernel=mercury.kernel,
                            mercury=mercury).snapshot()
    records = mercury.switch_records
    assert snap.switch_aborts >= 0
    assert snap.switch_rollbacks >= sum(r.rollbacks for r in records)
    assert sum(snap.retry_histogram.values()) == len(records)
    assert snap.switch_retries == sum(r.retries for r in records)
    assert plan.injected == len(plan.log)
