"""Property: the incremental attach recompute is *exact*.

The dirty-root tracker (:class:`repro.core.accounting.MmuAccounting`) lets
an attach re-pin clean roots instead of revalidating them.  That is only
sound if, for every reachable interleaving of process lifecycle, mapping
activity and mode switches, the page-info table the incremental path
produces is indistinguishable from the paper's full recompute — same types,
same type counts, same reference counts, same pinned set.

hypothesis drives the interleavings; the reference is a fresh
:class:`~repro.vmm.page_info.PageInfoTable` rebuilt from scratch over the
kernel's current address spaces, exactly what ``incremental_attach=False``
would compute.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Machine, Mercury, small_config
from repro.core.mercury import Mode
from repro.params import PAGE_SIZE
from repro.vmm.page_info import PageInfoTable

OPS = st.sampled_from([
    "fork", "reap", "exec", "mmap", "munmap", "touch",
    "attach", "detach", "roundtrip",
])


def _fresh() -> Mercury:
    machine = Machine(small_config(mem_kb=32768))
    mercury = Mercury(machine, incremental_attach=True)
    mercury.create_kernel(image_pages=8)
    return mercury


def _apply(mercury: Mercury, op: str, state: dict) -> None:
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    if op == "fork" and len(state["children"]) < 5:
        pid = k.syscall(cpu, "fork")
        state["children"].append(k.procs.get(pid))
    elif op == "reap" and state["children"]:
        k.run_and_reap(cpu, state["children"].pop())
    elif op == "exec" and state["children"]:
        # teardown + rebuild of a root: exercises the dead-root path (the
        # new PGD may even reuse the dead root's frame)
        child = state["children"][-1]
        k.switch_to(cpu, child)
        k.syscall(cpu, "exec", "x", 6, task=child)
        k.switch_to(cpu, k.procs.get(1))
    elif op == "mmap":
        base = k.syscall(cpu, "mmap", 2 * PAGE_SIZE, True)
        state["regions"].append((base, 2 * PAGE_SIZE))
    elif op == "munmap" and state["regions"]:
        base, length = state["regions"].pop()
        k.syscall(cpu, "munmap", base, length)
    elif op == "touch":
        task = k.scheduler.current
        base = k.syscall(cpu, "mmap", PAGE_SIZE)
        k.vmem.access(cpu, task, base, write=True)
        state["regions"].append((base, PAGE_SIZE))
    elif op == "attach" and mercury.mode is Mode.NATIVE:
        mercury.attach()
    elif op == "detach" and mercury.mode is not Mode.NATIVE:
        mercury.detach()
    elif op == "roundtrip":
        # an idle detach->attach round trip: the steady state where every
        # root is clean and the incremental path does the least work
        if mercury.mode is not Mode.NATIVE:
            mercury.detach()
        mercury.attach()


def _full_reference(mercury: Mercury) -> PageInfoTable:
    """What ``incremental_attach=False`` would build for the current
    kernel state: a from-scratch validation of every address space."""
    ref = PageInfoTable(mercury.machine.memory)
    ref.recompute(mercury.machine.boot_cpu, mercury.kernel.aspaces,
                  mercury.domain.domain_id)
    return ref


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(OPS, max_size=25))
def test_incremental_attach_matches_full_recompute(ops):
    mercury = _fresh()
    state = {"children": [], "regions": []}
    for op in ops:
        _apply(mercury, op, state)
    if mercury.mode is Mode.NATIVE:
        mercury.attach()

    live = mercury.vmm.page_info
    ref = _full_reference(mercury)
    assert ref.semantically_equal(live), \
        "incremental attach left different types/type-counts than a full recompute"
    assert live.ref_count == ref.ref_count, \
        "incremental attach left different reference counts than a full recompute"
    assert set(live.pinned) == set(ref.pinned), \
        "incremental attach pinned a different frame set than a full recompute"
    # only the very first attach may take the full path; no committed
    # sequence of ops may silently degrade the steady state
    assert mercury.mmu_log.full_recomputes <= 1


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.sampled_from(["fork", "reap", "exec", "mmap", "munmap",
                                 "touch"]), max_size=15))
def test_native_activity_then_attach_is_exact(ops):
    """The adversarial shape for the tracker: a committed round trip, then
    arbitrary native-mode churn (which only *marks* roots, maintaining no
    counts), then the attach that must reconcile it all."""
    mercury = _fresh()
    mercury.attach()
    mercury.detach()
    state = {"children": [], "regions": []}
    for op in ops:
        _apply(mercury, op, state)
    mercury.attach()

    live = mercury.vmm.page_info
    ref = _full_reference(mercury)
    assert ref.semantically_equal(live)
    assert live.ref_count == ref.ref_count
    assert set(live.pinned) == set(ref.pinned)
    assert mercury.mmu_log.full_recomputes <= 1
