"""Microreboot vs. the balloon: a guest squeezed below its initial
reservation must come back from VMM recovery at its *resized* footprint,
with its balloon pair reconnected and still operable."""

from __future__ import annotations

import pytest

from repro import Machine, Mercury, faults, small_config
from repro.core.recovery import RecoveryManager
from repro.watchdog import Watchdog


@pytest.fixture
def squeezed():
    """An attached stack hosting one guest ballooned from 96 down to 64."""
    machine = Machine(small_config())
    mercury = Mercury(machine)
    mercury.create_kernel(name="driver", image_pages=16)
    cpu = machine.boot_cpu
    mercury.attach(cpu)
    guest = mercury.host_guest(name="squeezee", image_pages=8,
                               mem_pages=96, mem_floor=24)
    front, back = mercury.balloons[guest.owner_id]
    # map a few frames so the footprint is not pure pool
    front.map_pool_frames(cpu, guest.scheduler.current, 6)
    back.set_target(cpu, 64)
    assert mercury.vmm.domains[guest.owner_id].mem_pages == 64
    return machine, mercury, cpu, guest


@pytest.mark.parametrize("site", [faults.VMM_BALLOON_WEDGED,
                                  faults.VMM_PAGEINFO_CORRUPT])
def test_rehost_preserves_ballooned_size(squeezed, site):
    machine, mercury, cpu, guest = squeezed
    owner = guest.owner_id
    owned_before = len(machine.memory.frames_owned_by(owner))
    front_before, _ = mercury.balloons[owner]
    pool_before = list(front_before.pool)
    rmap_before = dict(front_before._rmap)

    watchdog = Watchdog(mercury, suspect_scans=1)
    manager = RecoveryManager(mercury, watchdog)
    faults.inject_vmm_fault(site, mercury)
    verdict = watchdog.scan(cpu)
    assert verdict is not None
    record = manager.recover(verdict, cpu=cpu)
    assert record.success
    assert record.guests_rehosted == 1

    # the domain is re-created at the ballooned (resized) footprint, not
    # the original 96-page reservation; the reconnect itself may cost a
    # frame or two, so compare against the live owner column
    dom = mercury.vmm.domains[owner]
    owned_after = len(machine.memory.frames_owned_by(owner))
    assert dom.mem_pages == owned_after
    assert owned_before <= owned_after <= owned_before + 4
    assert dom.mem_pages < 96
    assert dom.mem_floor == 24

    # the balloon pair is reconnected with the frontend state carried over
    assert owner in mercury.balloons
    front, back = mercury.balloons[owner]
    assert front is not front_before
    assert list(front.pool) == pool_before
    assert front._rmap == rmap_before

    # and it still balloons: deflate 8 up, inflate 8 back
    ledger = dom.mem_pages
    back.set_target(cpu, ledger + 8)
    assert dom.mem_pages == ledger + 8
    back.set_target(cpu, ledger)
    assert dom.mem_pages == ledger

    # the guest is alive after all of it
    assert guest.syscall(cpu, "getpid") is not None


def test_rehosted_balloon_survives_second_recovery(squeezed):
    """Two rounds: squeeze, recover, squeeze again, recover again — the
    re-derived ledger must stay consistent through repeated microreboots."""
    machine, mercury, cpu, guest = squeezed
    owner = guest.owner_id
    watchdog = Watchdog(mercury, suspect_scans=1)
    manager = RecoveryManager(mercury, watchdog)
    for round_no in range(2):
        faults.inject_vmm_fault(faults.VMM_BALLOON_WEDGED, mercury,
                                variant=round_no)
        verdict = watchdog.scan(cpu)
        assert verdict is not None
        assert manager.recover(verdict, cpu=cpu).success
        dom = mercury.vmm.domains[owner]
        assert dom.mem_pages == len(machine.memory.frames_owned_by(owner))
        _front, back = mercury.balloons[owner]
        back.set_target(cpu, dom.mem_pages - 4)
