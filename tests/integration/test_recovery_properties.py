"""Randomized properties of the chaos-to-recovery pipeline.

Three claims, hypothesis-driven:

- **detection completeness** — *any* single VMM-structure corruption (every
  registered site, every victim-selection variant) is caught within one
  scan period of a quiescent watchdog.
- **campaign determinism** — the chaos campaign is a pure function of its
  seed: same seed, byte-identical canonical output; different seeds draw
  different schedules.
- **recovery idempotence** — a second emergency detach during (or after) a
  recovery is a no-op, and ``recover()`` refuses to re-enter itself.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings, strategies as st

from repro import Machine, Mercury, faults, small_config
from repro.core.invariants import check_all
from repro.core.mercury import Mode
from repro.core.recovery import RecoveryManager
from repro.hw.machine import reset_machine_ids
from repro.watchdog import Watchdog

SITES = st.sampled_from([s.name for s in faults.VMM_SITES])


def _attached_stack(ncpus: int = 1) -> Mercury:
    reset_machine_ids()
    cfg = dataclasses.replace(small_config(), num_cpus=ncpus)
    mercury = Mercury(Machine(cfg))
    mercury.create_kernel(image_pages=16)
    mercury.attach()
    # balloon=True: the site catalogue includes the wedged balloon ring,
    # so the representative stack must host an elastic guest
    mercury.host_guest(image_pages=8, balloon=True)
    return mercury


@settings(max_examples=25, deadline=None)
@given(site=SITES, variant=st.integers(min_value=0, max_value=7),
       ncpus=st.integers(min_value=1, max_value=2))
def test_any_single_corruption_detected_within_one_scan(site, variant,
                                                        ncpus):
    """Whatever field the injector picks (victim choice rotates with
    ``variant``), a quiescent watchdog's next scan must name a violated
    invariant — no corruption is invisible."""
    mercury = _attached_stack(ncpus)
    watchdog = Watchdog(mercury, suspect_scans=1)
    assert watchdog.scan() is None
    faults.inject_vmm_fault(site, mercury, variant=variant)
    verdict = watchdog.scan()
    assert verdict is not None, (
        f"{site} variant {variant} escaped the scan")
    assert verdict.invariant
    # and the microreboot clears it: the follow-up scan is clean
    record = RecoveryManager(mercury).recover(verdict)
    assert record.success
    assert watchdog.scan() is None
    assert check_all(mercury) == []


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_same_seed_campaigns_are_byte_identical(seed):
    from repro.bench.chaoscampaign import run_chaos_campaign

    first = run_chaos_campaign(episodes=2, seed=seed)
    second = run_chaos_campaign(episodes=2, seed=seed)
    assert first.canonical_output() == second.canonical_output()
    assert first.success_count == len(first.results)


@settings(max_examples=10, deadline=None)
@given(site=SITES)
def test_recovery_is_idempotent(site):
    """The emergency path must tolerate being entered twice: once the
    kernel is back on the NativeVO a second emergency detach finds nothing
    to undo, and ``recover()`` while a recovery is in flight returns None
    instead of recursing."""
    mercury = _attached_stack()
    watchdog = Watchdog(mercury, suspect_scans=1)
    manager = RecoveryManager(mercury)
    faults.inject_vmm_fault(site, mercury)
    verdict = watchdog.scan()
    assert verdict is not None

    reentered = []
    original = manager._microreboot

    def probing_microreboot(cpu):
        # mid-recovery: the stack is already native — both re-entry paths
        # must refuse to act
        reentered.append(manager.recover(verdict))
        reentered.append(manager.emergency_detach(cpu))
        return original(cpu)

    manager._microreboot = probing_microreboot
    record = manager.recover(verdict)
    manager._microreboot = original

    assert reentered == [None, []]
    assert record.success
    assert mercury.mode is Mode.PARTIAL_VIRTUAL
    assert manager.emergency_detaches == 1  # the probes added none
    assert check_all(mercury) == []
