"""Determinism: identical runs produce identical cycle counts.

The benches assert numeric shapes; that only works because the simulator
has no hidden nondeterminism (no wall clock, no unseeded RNG, no hash
ordering dependence in charged paths).
"""

import pytest

from repro import Machine, Mercury, small_config
from repro.bench.configs import build_config
from repro.workloads.dbench import run_dbench
from repro.workloads.lmbench import bench_ctx, bench_fork
from repro.workloads.osdb import run_osdb_ir

CFG = small_config(mem_kb=65536)


def test_fork_bench_bit_identical_across_builds():
    runs = []
    for _ in range(2):
        sut = build_config("X-0", CFG, image_pages=64)
        runs.append(bench_fork(sut.kernel, sut.cpu, iters=3))
    assert runs[0] == runs[1]


def test_ctx_bench_bit_identical():
    runs = []
    for _ in range(2):
        sut = build_config("N-L", CFG, image_pages=64)
        runs.append(bench_ctx(sut.kernel, sut.cpu, 4, 16, rounds=2))
    assert runs[0] == runs[1]


def test_app_workloads_bit_identical():
    runs = []
    for _ in range(2):
        sut = build_config("X-U", CFG, image_pages=32)
        osdb = run_osdb_ir(sut.kernel, sut.cpu, rows=256, queries=20)
        db = run_dbench(sut.kernel, sut.cpu, clients=2, files_per_client=2)
        runs.append((osdb.elapsed_us, db.elapsed_us))
    assert runs[0] == runs[1]


def test_mode_switch_bit_identical():
    cycles = []
    for _ in range(2):
        machine = Machine(CFG)
        mc = Mercury(machine)
        k = mc.create_kernel(image_pages=64)
        for _ in range(5):
            k.syscall(machine.boot_cpu, "fork")
        rec = mc.attach()
        cycles.append(rec.cycles)
        mc.detach()
    assert cycles[0] == cycles[1]
