"""Properties of the batched, notification-coalesced split-driver datapath.

Two families of guarantees, stated as hypothesis properties:

1. **No lost wakeups.**  The notification-avoidance protocol
   (``push_*_and_check_notify`` / ``final_check_for_*``, §5.2) may
   suppress almost every event-channel send — but under *any*
   interleaving of producer pushes, consumer polls, and notification
   deliveries, every request is eventually consumed and every response
   eventually reaped once pending notifications drain.  A protocol bug
   (advertising the wakeup index *after* the re-check, say) strands work
   forever; this test is what catches it.

2. **Batching is semantically transparent.**  Driving the same packet
   or block sequence through the per-request datapath (flush per
   packet, one block per submission) and through the batched datapath
   (xmit_more queueing, multi-block submissions) must deliver the same
   payloads in the same order, leave the rings in equivalent quiescent
   states, and never cost *more* cycles batched than unbatched.
   Batching may only change when doorbells ring and what the CPU bill
   is — never what arrives.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Machine, small_config
from repro.core.virtual_vo import VirtualVO
from repro.guestos.kernel import Kernel
from repro.guestos.splitio import connect_split_block, connect_split_net
from repro.hw.devices import Packet
from repro.vmm.hypervisor import Hypervisor
from repro.vmm.rings import IoRing


# ---------------------------------------------------------------------------
# property 1: the notify-avoidance protocol never strands work
# ---------------------------------------------------------------------------

OPS = st.lists(st.sampled_from(["push", "push_batch", "kick_back",
                                "kick_front"]), max_size=200)


@settings(max_examples=120, deadline=None)
@given(ops=OPS)
def test_notify_avoidance_never_loses_a_wakeup(ops):
    """Model a frontend/backend pair over one ring with level-triggered
    pending bits standing in for the event channel.  The producer only
    notifies when the protocol says so; the consumer only runs when a
    notification is delivered.  Whatever the interleaving, quiescing the
    pending bits must leave the ring empty — i.e. suppression never
    suppressed a wakeup anyone needed."""
    ring = IoRing(size=4)
    req_pending = rsp_pending = False
    pushed = consumed = reaped = 0

    def backend_poll():
        # NAPI-style: drain, answer, then final-check before sleeping
        nonlocal consumed, rsp_pending
        while True:
            while ring.has_requests():
                ring.push_response(ring.pop_request())
                consumed += 1
                if ring.push_responses_and_check_notify():
                    rsp_pending = True
            if not ring.final_check_for_requests():
                return

    def frontend_reap():
        nonlocal reaped
        while True:
            while ring.has_responses():
                ring.pop_response()
                reaped += 1
            if not ring.final_check_for_responses():
                return

    for op in ops:
        if op == "push" and ring.free_request_slots():
            ring.push_request(pushed)
            pushed += 1
            if ring.push_requests_and_check_notify():
                req_pending = True
        elif op == "push_batch":
            # queue up to 3, publish once — the batched frontend shape
            n = min(3, ring.free_request_slots())
            for _ in range(n):
                ring.push_request(pushed)
                pushed += 1
            if n and ring.push_requests_and_check_notify():
                req_pending = True
        elif op == "kick_back" and req_pending:
            req_pending = False
            backend_poll()
        elif op == "kick_front" and rsp_pending:
            rsp_pending = False
            frontend_reap()
        ring.check_invariants()

    # quiesce: deliver whatever the pending bits still hold — and nothing
    # else.  If any request or response survives this, a wakeup was lost.
    for _ in range(3):
        if req_pending:
            req_pending = False
            backend_poll()
        if rsp_pending:
            rsp_pending = False
            frontend_reap()
    assert consumed == pushed
    assert reaped == consumed
    assert not ring.has_requests() and not ring.has_responses()
    ring.check_invariants()


# ---------------------------------------------------------------------------
# property 2: batched == per-request (packets, blocks, ring state)
# ---------------------------------------------------------------------------

def _xu_stack():
    """A booted X-U topology: driver-domain kernel + guest kernel wired
    over split block and net.  Both stacks a test builds are constructed
    identically, so their states are directly comparable."""
    machine = Machine(small_config(mem_kb=32768))
    vmm = Hypervisor(machine)
    vmm.warm_up()
    dom0 = vmm.create_domain("dom0", domain_id=0, is_driver_domain=True)
    vmm.activate()
    k0 = Kernel(machine, VirtualVO(machine, vmm, dom0), owner_id=0,
                name="dom0")
    dom0.guest = k0
    k0.boot(image_pages=8)
    domU = vmm.create_domain("domU", domain_id=1)
    kU = Kernel(machine, VirtualVO(machine, vmm, domU), owner_id=1,
                name="domU", has_devices=False)
    domU.guest = kU
    front_b, back_b = connect_split_block(kU, k0, vmm)
    front_n, back_n = connect_split_net(kU, k0, vmm,
                                        guest_addr="10.0.0.77:u")
    kU.boot(image_pages=8)
    return machine, vmm, kU, front_b, front_n, back_n


PACKET_SIZES = st.lists(st.integers(min_value=64, max_value=1500),
                        min_size=1, max_size=24)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(sizes=PACKET_SIZES)
def test_batched_tx_delivers_identical_packet_sequence(sizes):
    wires = []
    cycle_bills = []
    for batched in (False, True):
        machine, vmm, kU, _, front_n, back_n = _xu_stack()
        wire: list[tuple] = []
        back_n._transmit = lambda c, pkt, w=wire: w.append(
            (pkt.payload, pkt.size_bytes))
        cpu = machine.boot_cpu
        t0 = cpu.rdtsc()
        for i, size in enumerate(sizes):
            pkt = Packet("10.0.0.77:u", "10.0.0.250", "udp", size,
                         payload=f"pkt{i}")
            # batched: promise more and flush once at the end (xmit_more);
            # per-request: doorbell on every packet
            front_n.transmit(cpu, pkt, more=batched)
        if batched:
            front_n.tx_flush(cpu)
        # the synchronous bill of the transmit path; run_until_idle below
        # only replays deferred wakeups on the shared clock
        cycle_bills.append(cpu.rdtsc() - t0)
        machine.run_until_idle()
        wires.append(wire)
        # quiescent ring: everything the guest queued reached the backend
        assert not front_n.tx_ring.has_requests()
        front_n.tx_ring.check_invariants()
        front_n.rx_ring.check_invariants()
        assert front_n.tx == len(sizes)
        assert back_n.tx_handled == len(sizes)

    per_request, batched_wire = wires
    assert batched_wire == per_request  # same payloads, same order
    # batching may only make the guest's bill smaller, never larger
    assert cycle_bills[1] <= cycle_bills[0]


BLOCK_WRITES = st.lists(
    st.tuples(st.integers(min_value=0, max_value=15),
              st.integers(min_value=0, max_value=99)),
    min_size=1, max_size=24)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(writes=BLOCK_WRITES)
def test_batched_block_writes_produce_identical_disk_state(writes):
    disks = []
    for batched in (False, True):
        machine, vmm, kU, front_b, _, _ = _xu_stack()
        cpu = machine.boot_cpu
        blocks = [(blk, f"v{val}") for blk, val in writes]
        if batched:
            front_b.write_blocks(cpu, blocks)
        else:
            for blk, data in blocks:
                front_b.write_block(cpu, blk, data)
        machine.run_until_idle()
        disks.append(dict(machine.disk.blocks))
        # quiescent ring + balanced grant accounting after every batch
        assert not front_b.ring.has_requests()
        assert not front_b.ring.has_responses()
        front_b.ring.check_invariants()
        assert front_b.requests == len(blocks)
        for grant in vmm.grants.active_grants_of(1):
            assert grant.active_maps == 0

    per_request, batched_disk = disks
    assert batched_disk == per_request  # block -> data, last write wins
