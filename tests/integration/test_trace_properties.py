"""Trace well-formedness properties under switch storms.

Whatever interleaving of switches, retries, aborts, injected faults and
workload syscalls runs, the recorded trace must stay well-formed: spans
strictly nest, per-CPU timestamps never decrease (even though the SMP
coordinator rewinds the shared clock to overlap secondary work), every
begin has a matching end across ``SwitchAborted`` unwinds, and ring
overflow drops oldest-first with a counted ``trace_dropped`` metric.

Reuses the storm machinery of ``test_switch_storm``.
"""

from __future__ import annotations

import dataclasses
from types import SimpleNamespace

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Machine, Mercury, faults, small_config, trace
from repro.errors import ReproError
from repro.metrics import MetricsCollector

from tests.integration.test_switch_storm import OPS, _apply, _fresh, _settle


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(OPS, max_size=12))
def test_storm_trace_is_well_formed(ops):
    mercury = _fresh()
    plan = faults.FaultPlan()
    state = {"children": []}
    with trace.tracing(mercury.machine) as tracer:
        try:
            with faults.injected(plan):
                for op in ops:
                    try:
                        _apply(mercury, plan, op, state)
                    except ReproError:
                        pass
        finally:
            faults.clear_plan()
        _settle(mercury)
    assert trace.validate(tracer.events(), dropped=tracer.dropped) == []


UP_SITES = [s.name for s in faults.SWITCH_SITES if not s.smp_only]
SMP_SITES = [s.name for s in faults.SWITCH_SITES if s.smp_only]


@pytest.mark.parametrize("site", UP_SITES)
@pytest.mark.parametrize("start_attached", [False, True])
def test_aborted_switch_trace_balances(site, start_attached):
    """A terminally aborted switch (fault at any UP-reachable site) leaves
    a balanced trace: the rollback unwinds through the same span context
    managers the forward path opened."""
    mercury = _fresh()
    if start_attached:
        mercury.attach()
    mercury.engine.max_retries = 0
    plan = faults.FaultPlan()
    plan.arm(site, times=None)
    with trace.tracing(mercury.machine) as tracer, faults.injected(plan):
        try:
            if start_attached:
                mercury.detach()
            else:
                mercury.attach()
        except ReproError:
            pass
    assert trace.validate(tracer.events(), dropped=tracer.dropped) == []


@pytest.mark.parametrize("site", SMP_SITES)
def test_aborted_smp_switch_trace_balances(site):
    """Same property across the rendezvous-only fault sites — including
    the clock-rewinding overlapped secondary reloads."""
    cfg = dataclasses.replace(small_config(), num_cpus=2)
    mercury = Mercury(Machine(cfg))
    mercury.create_kernel()
    mercury.engine.max_retries = 0
    plan = faults.FaultPlan()
    plan.arm(site, times=None)
    with trace.tracing(mercury.machine) as tracer, faults.injected(plan):
        try:
            mercury.attach()
        except ReproError:
            pass
    events = tracer.events()
    assert trace.validate(events, dropped=tracer.dropped) == []
    # and per-CPU monotonicity specifically survived the clock rewind
    last: dict[int, int] = {}
    for ev in events:
        assert ev.ts >= last.get(ev.cpu_id, 0)
        last[ev.cpu_id] = ev.ts


@given(st.integers(min_value=1, max_value=16),
       st.integers(min_value=0, max_value=64))
@settings(max_examples=40, deadline=None)
def test_ring_overflow_drops_oldest_first(capacity, n):
    clock = SimpleNamespace(cycles=0)
    tracer = trace.Tracer(clock, capacity_per_cpu=capacity)
    for i in range(n):
        clock.cycles += 1
        tracer.instant(0, f"ev{i}")
    events = tracer.events()
    assert len(events) == min(n, capacity)
    assert [e.name for e in events] == \
        [f"ev{i}" for i in range(max(0, n - capacity), n)]
    assert tracer.dropped == max(0, n - capacity)
    assert tracer.recorded == n


def test_trace_dropped_surfaces_as_metric():
    """Overflow is not silent: the metrics snapshot reports both the
    lifetime event count and the evicted count of the installed tracer."""
    mercury = _fresh()
    collector = MetricsCollector(mercury.machine, kernel=mercury.kernel,
                                 mercury=mercury)
    tiny = trace.Tracer(mercury.machine.clock, capacity_per_cpu=4)
    with trace.tracing(tiny) as tracer:
        mercury.attach()
        snap = collector.snapshot()
    assert tracer.dropped > 0
    assert snap.trace_dropped == tracer.dropped
    assert snap.trace_events == tracer.recorded
    assert tracer.recorded > tracer.capacity_per_cpu
    # with no tracer installed the fields read zero
    snap2 = collector.snapshot()
    assert snap2.trace_events == 0 and snap2.trace_dropped == 0


def test_truncated_trace_still_builds_span_trees():
    """A ring small enough to evict the opening BEGINs still yields a
    usable (validated, truncation-tolerant) span forest."""
    mercury = _fresh()
    tiny = trace.Tracer(mercury.machine.clock, capacity_per_cpu=8)
    with trace.tracing(tiny) as tracer:
        mercury.attach()
        mercury.detach()
    events = tracer.events()
    assert trace.validate(events, dropped=tracer.dropped) == []
    forests = trace.build_span_trees(events)
    assert forests  # something survived
    for forest in forests.values():
        for root in forest:
            for node in root.walk():
                if node.closed:
                    assert node.end >= node.start
