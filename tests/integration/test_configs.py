"""The six configurations: construction, equivalences, paper shape.

These are the repository's headline integration assertions: Mercury's
modes must be indistinguishable (cost-wise) from their always-on
counterparts, and native mode must be indistinguishable from unmodified
Linux — §7.3's core claims.
"""

import pytest

from repro.bench.configs import CONFIG_KEYS, build_config
from repro.errors import ReproError
from repro.params import small_config
from repro.workloads.lmbench import bench_fork, bench_page_fault

CFG = small_config(mem_kb=65536)


@pytest.fixture(scope="module")
def fork_costs():
    # a realistically-sized image (the paper's lmbench processes are a few
    # hundred pages) so page-table work dominates, as on real hardware
    costs = {}
    for key in CONFIG_KEYS:
        sut = build_config(key, CFG, image_pages=256)
        costs[key] = bench_fork(sut.kernel, sut.cpu, iters=3)
    return costs


def test_all_six_configs_build_and_run():
    for key in CONFIG_KEYS:
        sut = build_config(key, CFG, image_pages=16)
        pid = sut.kernel.syscall(sut.cpu, "fork")
        sut.kernel.run_and_reap(sut.cpu, sut.kernel.procs.get(pid))


def test_unknown_config_rejected():
    with pytest.raises(ReproError):
        build_config("Z-9", CFG)


def test_mercury_native_within_2pct_of_native(fork_costs):
    """§7.3: 'the overhead in Mercury ... is less than 2% compared to
    native Linux'."""
    assert fork_costs["M-N"] == pytest.approx(fork_costs["N-L"], rel=0.02)
    assert fork_costs["M-N"] >= fork_costs["N-L"]  # but not free


def test_mercury_virtual_matches_dom0(fork_costs):
    assert fork_costs["M-V"] == pytest.approx(fork_costs["X-0"], rel=0.02)


def test_mercury_hosted_matches_domU(fork_costs):
    assert fork_costs["M-U"] == pytest.approx(fork_costs["X-U"], rel=0.02)


def test_virtualization_fork_penalty_in_paper_band(fork_costs):
    """Table 1 shape: fork under Xen is several times native (the paper
    measures ~4.9x; we accept 2.5-7x)."""
    ratio = fork_costs["X-0"] / fork_costs["N-L"]
    assert 2.5 < ratio < 7.0


def test_page_fault_penalty_in_paper_band():
    suts = {key: build_config(key, CFG, image_pages=16)
            for key in ("N-L", "X-0")}
    pf = {key: bench_page_fault(s.kernel, s.cpu, iters=32)
          for key, s in suts.items()}
    ratio = pf["X-0"] / pf["N-L"]
    assert 1.8 < ratio < 4.0  # paper: 3.09/1.22 = 2.5x


def test_domU_runs_without_direct_devices():
    sut = build_config("X-U", CFG, image_pages=16)
    assert sut.kernel.has_devices is False
    assert sut.driver_kernel is not None
    # yet its filesystem works (through the rings)
    fd = sut.kernel.syscall(sut.cpu, "open", "/xu", True)
    sut.kernel.syscall(sut.cpu, "write", fd, "data", 4096)
    sut.kernel.syscall(sut.cpu, "fsync", fd)


def test_MU_guest_is_hosted_by_mercury():
    sut = build_config("M-U", CFG, image_pages=16)
    assert sut.mercury is not None
    assert sut.kernel in sut.mercury.guests
    assert sut.driver_kernel is sut.mercury.kernel


def test_peer_is_always_native():
    for key in ("N-L", "X-U"):
        sut = build_config(key, CFG, image_pages=16)
        assert sut.peer_kernel.vo.mode_name == "bare"
        assert sut.peer_kernel.machine is not sut.machine
        assert sut.peer_kernel.machine.clock is sut.machine.clock
