"""Decomposing Mercury's native-mode overhead.

§7.2: "Despite a number [of] pointer indirection[s] introduced by the
virtualization objects when accessing virtualization-sensitive code and
data, Mercury still only incurs negligible overhead" — here we verify the
M-N minus N-L delta *is* the indirection, cycle for cycle: no hidden cost
leaks into the native mode.
"""

import pytest

from repro.bench.configs import build_config
from repro.params import small_config

CFG = small_config(mem_kb=65536)


def _fork_cycles_and_entries(key):
    sut = build_config(key, CFG, image_pages=128)
    k, cpu = sut.kernel, sut.cpu
    entries0 = k.vo.entries
    t0 = cpu.rdtsc()
    pid = k.syscall(cpu, "fork")
    k.run_and_reap(cpu, k.procs.get(pid))
    return cpu.rdtsc() - t0, k.vo.entries - entries0


def test_mn_overhead_is_exactly_the_vo_indirection():
    nl_cycles, nl_entries = _fork_cycles_and_entries("N-L")
    mn_cycles, mn_entries = _fork_cycles_and_entries("M-N")
    # same code path: same number of sensitive-code entries
    assert mn_entries == nl_entries
    # the delta is the function-table indirection, cycle for cycle
    delta = mn_cycles - nl_cycles
    cost = CFG.cost.cyc_vo_indirect
    assert delta == mn_entries * cost, (
        f"M-N overhead {delta} cycles != {mn_entries} VO entries "
        f"x {cost} cycles — something besides the indirection leaked in")


def test_mn_overhead_fraction_is_negligible():
    """The <2% headline, at the microbenchmark level."""
    nl_cycles, _ = _fork_cycles_and_entries("N-L")
    mn_cycles, _ = _fork_cycles_and_entries("M-N")
    assert (mn_cycles - nl_cycles) / nl_cycles < 0.02


def test_mv_matches_x0_exactly():
    """M-V and X-0 run the identical virtual path: zero delta, not just
    'within tolerance'."""
    x0_cycles, x0_entries = _fork_cycles_and_entries("X-0")
    mv_cycles, mv_entries = _fork_cycles_and_entries("M-V")
    assert (mv_cycles, mv_entries) == (x0_cycles, x0_entries)
