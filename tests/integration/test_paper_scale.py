"""Full paper-scale validation: the §7.1 testbed dimensions.

The benches run at a reduced memory scale for speed; this test builds the
actual 900 000 KB machine once and verifies nothing degrades at scale —
per-operation latencies and switch times must match the small-scale
numbers (they are population-dependent, not memory-size-dependent).
"""

import pytest

from repro import Machine, Mercury, paper_config, small_config


def test_paper_scale_machine_and_switch():
    machine = Machine(paper_config())
    assert machine.memory.num_frames == 225_000

    mercury = Mercury(machine)
    kernel = mercury.create_kernel(image_pages=384)
    cpu = machine.boot_cpu
    for _ in range(41):
        kernel.syscall(cpu, "fork")

    rec_big = mercury.attach()
    mercury.detach()

    # the same population on a small machine: identical switch cost
    small = Machine(small_config(mem_kb=262_144))
    mc2 = Mercury(small)
    k2 = mc2.create_kernel(image_pages=384)
    for _ in range(41):
        k2.syscall(small.boot_cpu, "fork")
    rec_small = mc2.attach()
    mc2.detach()

    assert rec_big.pt_pages == rec_small.pt_pages
    assert rec_big.cycles == rec_small.cycles, \
        "switch cost depends on installed memory (it must not)"
    # and it lands in the paper's regime
    assert 0.1 < rec_big.ms() < 0.4


def test_paper_scale_fork_latency_unchanged():
    from repro.workloads.lmbench import bench_fork
    from repro.bench.configs import BareMetalVO
    from repro.guestos.kernel import Kernel

    results = []
    for config in (paper_config(), small_config(mem_kb=262_144)):
        machine = Machine(config)
        k = Kernel(machine, BareMetalVO(machine), name="scale")
        k.boot(image_pages=384)
        results.append(bench_fork(k, machine.boot_cpu, iters=2))
    assert results[0] == pytest.approx(results[1], rel=1e-9)


def test_paper_scale_domU_memory_reservations():
    """§7.1: 900 000 KB per variant, 870 000 KB for domainU — both fit a
    2 GB machine with the VMM resident."""
    import dataclasses
    from repro.params import MachineConfig

    config = dataclasses.replace(MachineConfig(), mem_kb=2_000_000)
    machine = Machine(config)
    mercury = Mercury(machine)
    mercury.create_kernel(image_pages=96)
    mercury.attach()
    guest = mercury.host_guest(image_pages=96)
    # both kernels live, the VMM reserved, and most frames still free
    assert machine.memory.free_frames > machine.memory.num_frames // 2
    cpu = machine.boot_cpu
    pid = guest.syscall(cpu, "fork")
    guest.run_and_reap(cpu, guest.procs.get(pid))
