"""``MetricsSnapshot.merge``: the fleet aggregation the sharded
simulation depends on.

The contract: merging k disjoint per-machine snapshots — however they
were grouped into shards first — equals merging all of them directly,
histogram fields included.  ``cycles`` is the one non-additive field
(every machine has its own clock; the fleet reports the furthest one)."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.fleet import LatencyHistogram
from repro.metrics import _FIELD_NAMES, MetricsCollector, MetricsSnapshot

#: counters exercised explicitly because the sharded benches gate on them
KEY_FIELDS = ("switch_retries", "pending_retries", "watchdog_scans",
              "watchdog_detections", "recoveries", "recovery_failures",
              "mode_switches", "faults_injected")


def _snapshot(values: dict, histogram: dict,
              latencies: list) -> MetricsSnapshot:
    snap = MetricsSnapshot()
    for name, value in values.items():
        setattr(snap, name, value)
    snap.retry_histogram = dict(histogram)
    hist = LatencyHistogram()
    for v in latencies:
        hist.record(v)
    snap.latency_histogram = hist.buckets
    return snap


snapshots = st.builds(
    _snapshot,
    st.dictionaries(st.sampled_from(list(_FIELD_NAMES)),
                    st.integers(min_value=0, max_value=10**9)),
    st.dictionaries(st.integers(min_value=0, max_value=16),
                    st.integers(min_value=1, max_value=10**6),
                    max_size=6),
    st.lists(st.integers(min_value=0, max_value=2**40), max_size=20))


@settings(max_examples=60, deadline=None)
@given(st.lists(snapshots, min_size=1, max_size=8),
       st.data())
def test_merge_is_partition_invariant(snaps, data):
    """Grouping into shards then merging the shard merges equals merging
    every per-machine snapshot at once — for any partition."""
    direct = MetricsSnapshot.merge(snaps)
    k = data.draw(st.integers(min_value=1, max_value=len(snaps)))
    groups = [[] for _ in range(k)]
    for i, snap in enumerate(snaps):
        groups[data.draw(st.integers(min_value=0, max_value=k - 1))
               ].append(snap)
    partitioned = MetricsSnapshot.merge(
        MetricsSnapshot.merge(g) for g in groups if g)
    assert partitioned == direct


@settings(max_examples=30, deadline=None)
@given(st.lists(snapshots, min_size=1, max_size=6))
def test_merge_sums_counters_and_maxes_cycles(snaps):
    merged = MetricsSnapshot.merge(snaps)
    for name in _FIELD_NAMES:
        expect = (max(getattr(s, name) for s in snaps) if name == "cycles"
                  else sum(getattr(s, name) for s in snaps))
        assert getattr(merged, name) == expect, name
    for field in ("retry_histogram", "latency_histogram"):
        keys = {k for s in snaps for k in getattr(s, field)}
        assert getattr(merged, field) == {
            k: sum(getattr(s, field).get(k, 0) for s in snaps)
            for k in keys}, field


@settings(max_examples=20, deadline=None)
@given(snapshots)
def test_merge_identity(snap):
    assert MetricsSnapshot.merge([snap]) == snap
    assert snap.merged_with(MetricsSnapshot()) == snap


def test_merge_key_fields_explicitly():
    """The retry histogram and watchdog counters (the fields the chaos /
    sharding gates read) add key-wise."""
    a = MetricsSnapshot(cycles=100)
    b = MetricsSnapshot(cycles=300)
    for i, name in enumerate(KEY_FIELDS, start=1):
        setattr(a, name, i)
        setattr(b, name, 10 * i)
    a.retry_histogram = {0: 5, 1: 2}
    b.retry_histogram = {1: 3, 4: 7}
    merged = a.merged_with(b)
    assert merged.cycles == 300
    for i, name in enumerate(KEY_FIELDS, start=1):
        assert getattr(merged, name) == 11 * i
    assert merged.retry_histogram == {0: 5, 1: 5, 4: 7}
    # inputs untouched
    assert a.retry_histogram == {0: 5, 1: 2}


latency_samples = st.lists(st.integers(min_value=0, max_value=2**40),
                           max_size=50)


def _latency_snap(vals) -> MetricsSnapshot:
    hist = LatencyHistogram()
    for v in vals:
        hist.record(v)
    snap = MetricsSnapshot()
    snap.latency_histogram = hist.buckets
    return snap


@settings(max_examples=40, deadline=None)
@given(a=latency_samples, b=latency_samples, c=latency_samples)
def test_latency_histogram_merge_is_associative(a, b, c):
    """(a+b)+c == a+(b+c) through the snapshot merge path, and both equal
    recording every sample into one histogram."""
    sa, sb, sc = _latency_snap(a), _latency_snap(b), _latency_snap(c)
    left = sa.merged_with(sb).merged_with(sc)
    right = sa.merged_with(sb.merged_with(sc))
    assert left.latency_histogram == right.latency_histogram
    assert left.latency_histogram == _latency_snap(a + b + c
                                                   ).latency_histogram


@settings(max_examples=40, deadline=None)
@given(st.lists(latency_samples, min_size=1, max_size=8), st.data())
def test_latency_histogram_merge_is_partition_invariant(sample_sets, data):
    """However per-machine latency logs are grouped into shards, the
    fleet-wide histogram — and so every percentile readout — is the
    same."""
    snaps = [_latency_snap(vals) for vals in sample_sets]
    direct = MetricsSnapshot.merge(snaps)
    k = data.draw(st.integers(min_value=1, max_value=len(snaps)))
    groups = [[] for _ in range(k)]
    for snap in snaps:
        groups[data.draw(st.integers(min_value=0, max_value=k - 1))
               ].append(snap)
    partitioned = MetricsSnapshot.merge(
        MetricsSnapshot.merge(g) for g in groups if g)
    assert partitioned.latency_histogram == direct.latency_histogram
    direct_hist = LatencyHistogram.from_counts(direct.latency_histogram)
    part_hist = LatencyHistogram.from_counts(partitioned.latency_histogram)
    for q in (0.5, 0.95, 0.99, 0.999):
        assert direct_hist.percentile(q) == part_hist.percentile(q)


def test_merge_of_real_disjoint_runs_equals_combined_counters():
    """Two real machines, real workloads: the merged snapshot carries
    exactly the sum of what each collector measured."""
    from repro import Machine, Mercury, small_config

    snaps = []
    for rounds in (1, 2):
        mercury = Mercury(Machine(small_config()))
        kernel = mercury.create_kernel(image_pages=8)
        cpu = mercury.machine.boot_cpu
        for _ in range(rounds):
            kernel.syscall(cpu, "fork")
            mercury.attach()
            mercury.detach()
        snaps.append(MetricsCollector(mercury.machine, kernel=kernel,
                                      mercury=mercury).snapshot())
    merged = MetricsSnapshot.merge(snaps)
    assert merged.mode_switches == sum(s.mode_switches for s in snaps) == 6
    assert merged.syscalls == sum(s.syscalls for s in snaps)
    assert merged.cycles == max(s.cycles for s in snaps)
