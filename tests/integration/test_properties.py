"""Randomized whole-system property tests.

hypothesis drives arbitrary interleavings of workload operations and mode
switches, and after every step the full §4.3 invariant suite
(:mod:`repro.core.invariants`) must hold.  This is the strongest
correctness statement in the repository: *no* reachable sequence of
application activity and self-virtualization events leaves the system
inconsistent.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro import Machine, Mercury, small_config
from repro.core.invariants import check_all
from repro.core.mercury import Mode
from repro.guestos.fs import BLOCK_SIZE
from repro.params import PAGE_SIZE
from repro.scenarios.checkpoint import checkpoint, restore

OPS = st.sampled_from([
    "fork", "reap", "exec", "mmap", "munmap", "touch",
    "write", "read", "fsync", "attach", "detach",
])


def _fresh(paging=None):
    from repro.core.mercury import PagingMode
    machine = Machine(small_config(mem_kb=32768))
    mercury = Mercury(machine, paging=paging or PagingMode.DIRECT)
    mercury.create_kernel(image_pages=8)
    return mercury


def _apply(mercury, op, state) -> None:
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    if op == "fork" and len(state["children"]) < 5:
        pid = k.syscall(cpu, "fork")
        state["children"].append(k.procs.get(pid))
    elif op == "reap" and state["children"]:
        k.run_and_reap(cpu, state["children"].pop())
    elif op == "exec" and state["children"]:
        child = state["children"][-1]
        k.switch_to(cpu, child)
        k.syscall(cpu, "exec", "x", 6, task=child)
        k.switch_to(cpu, k.procs.get(1))
    elif op == "mmap":
        base = k.syscall(cpu, "mmap", 2 * PAGE_SIZE, True)
        state["regions"].append((base, 2 * PAGE_SIZE))
    elif op == "munmap" and state["regions"]:
        base, length = state["regions"].pop()
        k.syscall(cpu, "munmap", base, length)
    elif op == "touch":
        task = k.scheduler.current
        base = k.syscall(cpu, "mmap", PAGE_SIZE)
        k.vmem.access(cpu, task, base, write=True)
        state["regions"].append((base, PAGE_SIZE))
    elif op == "write":
        fd = state.get("fd")
        if fd is None:
            fd = state["fd"] = k.syscall(cpu, "open", "/prop", True)
        k.syscall(cpu, "write", fd, "payload", BLOCK_SIZE)
    elif op == "read" and state.get("fd") is not None:
        k.syscall(cpu, "lseek", state["fd"], 0)
        k.syscall(cpu, "read", state["fd"], BLOCK_SIZE)
    elif op == "fsync" and state.get("fd") is not None:
        k.syscall(cpu, "fsync", state["fd"])
    elif op == "attach" and mercury.mode is Mode.NATIVE:
        mercury.attach()
    elif op == "detach" and mercury.mode is not Mode.NATIVE:
        mercury.detach()


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(OPS, max_size=25))
def test_property_invariants_hold_under_any_interleaving(ops):
    mercury = _fresh()
    state = {"children": [], "regions": []}
    for op in ops:
        _apply(mercury, op, state)
        violations = check_all(mercury)
        assert violations == [], f"after {op!r}: {violations}"


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(OPS, max_size=20))
def test_property_invariants_hold_in_shadow_mode(ops):
    """The same whole-system property, under shadow paging (ablation A4
    plumbing): shadows must stay coherent through any interleaving."""
    from repro.core.mercury import PagingMode
    mercury = _fresh(PagingMode.SHADOW)
    state = {"children": [], "regions": []}
    for op in ops:
        _apply(mercury, op, state)
        violations = check_all(mercury)
        assert violations == [], f"after {op!r}: {violations}"


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(OPS, max_size=12), st.lists(OPS, max_size=8))
def test_property_checkpoint_restore_roundtrip(before_ops, after_ops):
    """Any state is checkpointable, and restoring always reproduces it:
    the invariants hold and the filesystem/process population match."""
    mercury = _fresh()
    state = {"children": [], "regions": []}
    for op in before_ops:
        _apply(mercury, op, state)

    k = mercury.kernel
    fs_before = {p: i.size for p, i in k.fs.inodes.items()}
    tasks_before = sorted(k.procs.tasks)
    image = checkpoint(mercury)

    # diverge arbitrarily, then roll back
    for op in after_ops:
        _apply(mercury, op, state)
    if mercury.mode is not Mode.NATIVE:
        mercury.detach()
    restore(image, mercury)

    assert {p: i.size for p, i in k.fs.inodes.items()} == fs_before
    assert sorted(k.procs.tasks) == tasks_before
    violations = check_all(mercury)
    assert violations == [], violations


def test_invariant_checker_detects_injected_damage():
    """The checker itself must not be vacuous."""
    mercury = _fresh()
    assert check_all(mercury) == []
    t = mercury.kernel.scheduler.current
    mercury.kernel.scheduler.runqueue.extend([t, t])
    assert any("duplicated" in v for v in check_all(mercury))
