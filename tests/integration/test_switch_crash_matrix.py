"""The switch-crash matrix: every registered fault site × direction × CPU
topology.

For each site the matrix proves the §4.3 dependability claim twice over:

- **persistent fault** — the switch terminally aborts
  (:class:`~repro.errors.SwitchAborted`) and the kernel is bit-for-bit back
  in its pre-switch mode: VO pointer, VMM activation, segment DPLs, IDT
  ownership, pinned-frame set, registered address spaces, refcounts.  The
  next un-faulted switch then commits cleanly and the kernel still runs
  workloads.
- **single transient fault** — the engine rolls back, backs off, retries,
  and commits on its own; the caller never sees the fault.

``smp.ipi-delayed`` is the one latency-only site: the switch *commits*
under it (a late IPI stretches the gather; it corrupts nothing), which the
matrix asserts instead of a rollback.
"""

from __future__ import annotations

import pytest

from repro import Machine, Mercury, faults, small_config
from repro.core.invariants import check_all
from repro.core.mercury import Mode
from repro.errors import SwitchAborted
from repro.metrics import MetricsCollector, MetricsSnapshot

SITE_NAMES = [s.name for s in faults.SWITCH_SITES]
DIRECTIONS = ["attach", "detach"]
TOPOLOGIES = [1, 2]


def _stack(ncpus: int) -> Mercury:
    mercury = Mercury(Machine(small_config(num_cpus=ncpus)))
    mercury.create_kernel(image_pages=16)
    return mercury


def _fingerprint(mercury: Mercury) -> dict:
    """Everything a half-committed switch could corrupt."""
    kernel = mercury.kernel
    domain = mercury.domain
    tracker = mercury.mmu_log
    return {
        # the incremental-attach tracker is transactional state too: a
        # rollback that lost a dirty mark would leave a phantom-clean root
        # dodging revalidation on the retry.  (``trusted`` is deliberately
        # NOT part of the fingerprint — an attach rollback distrusts the
        # tracker by design, forcing the retry onto the full path.)
        "mmu_dirty": set(tracker.dirty) if tracker is not None else None,
        "mmu_snapshot_roots": ((sorted(tracker.contributions),
                                sorted(tracker.dead))
                               if tracker is not None else None),
        "mode": mercury.mode,
        "vo": id(kernel.vo),
        "vo_refcount": kernel.vo.refcount,
        "vmm_active": mercury.vmm.active,
        "segment_dpl": kernel.vo.data.kernel_segment_dpl,
        "gdt_dpls": {c.cpu_id: {sel: d.dpl for sel, d in c.gdt.items()}
                     for c in mercury.machine.cpus},
        "idt_owners": {c.cpu_id: getattr(c.idt_base, "owner", None)
                       for c in mercury.machine.cpus},
        "pinned": set(mercury.vmm.page_info.pinned),
        "registered_aspaces": (set(id(a) for a in domain.aspaces)
                               if domain is not None else set()),
        "interrupts": {c.cpu_id: c.interrupts_enabled
                       for c in mercury.machine.cpus},
    }


def _switch(mercury: Mercury, direction: str):
    return mercury.attach() if direction == "attach" else mercury.detach()


def _metrics(mercury: Mercury) -> MetricsSnapshot:
    """The dependability counters through their public API."""
    return MetricsCollector(mercury.machine, kernel=mercury.kernel,
                            mercury=mercury).snapshot()


def _smoke(mercury: Mercury) -> None:
    """The kernel must still run real work after the recovery."""
    kernel = mercury.kernel
    cpu = mercury.machine.boot_cpu
    pid = kernel.syscall(cpu, "fork")
    kernel.run_and_reap(cpu, kernel.procs.get(pid))
    assert check_all(mercury) == []


def _prepare(ncpus: int, direction: str, site_name: str) -> Mercury:
    spec = faults.site(site_name)
    if spec.smp_only and ncpus == 1:
        pytest.skip("site only exists on SMP machines")
    mercury = _stack(ncpus)
    if direction == "detach":
        assert mercury.attach() is not None
    return mercury


@pytest.mark.parametrize("ncpus", TOPOLOGIES, ids=["up", "smp"])
@pytest.mark.parametrize("direction", DIRECTIONS)
@pytest.mark.parametrize("site_name", SITE_NAMES)
def test_persistent_fault_aborts_and_rolls_back(site_name, direction, ncpus):
    mercury = _prepare(ncpus, direction, site_name)
    start_mode = mercury.mode
    before = _fingerprint(mercury)

    plan = faults.FaultPlan()
    plan.arm(site_name, times=None)
    latency_only = site_name == faults.IPI_DELAYED
    with faults.injected(plan):
        if latency_only:
            rec = _switch(mercury, direction)
            assert rec is not None
            assert mercury.mode is not start_mode
        else:
            with pytest.raises(SwitchAborted) as ei:
                _switch(mercury, direction)
            assert ei.value.retries == mercury.engine.max_retries
    assert plan.injected >= 1

    if not latency_only:
        # transactionally back where we started
        assert mercury.mode is start_mode
        assert _fingerprint(mercury) == before
        snap = _metrics(mercury)
        assert snap.switch_aborts == 1
        assert snap.switch_rollbacks >= 1
    assert check_all(mercury) == []

    # the un-faulted switch away from the current mode commits cleanly
    follow_up = direction
    if latency_only:  # already switched; prove the way back works instead
        follow_up = "detach" if direction == "attach" else "attach"
    rec = _switch(mercury, follow_up)
    assert rec is not None
    assert check_all(mercury) == []
    _smoke(mercury)


@pytest.mark.parametrize("ncpus", TOPOLOGIES, ids=["up", "smp"])
@pytest.mark.parametrize("direction", DIRECTIONS)
@pytest.mark.parametrize("site_name", SITE_NAMES)
def test_single_transient_fault_recovers_unattended(site_name, direction,
                                                    ncpus):
    mercury = _prepare(ncpus, direction, site_name)
    start_mode = mercury.mode

    plan = faults.FaultPlan()
    plan.arm(site_name, times=1)
    with faults.injected(plan):
        rec = _switch(mercury, direction)

    assert rec is not None
    assert mercury.mode is not start_mode
    assert plan.injected == 1
    snap = _metrics(mercury)
    if site_name == faults.IPI_DELAYED:
        assert rec.retries == 0  # committed despite the late IPI
    elif site_name == faults.REFCOUNT_STUCK:
        assert rec.retries >= 1
        assert rec.rollbacks == 0  # refused at the gate, nothing unwound
    else:
        assert rec.retries >= 1
        assert rec.rollbacks >= 1
        assert snap.switch_rollbacks >= 1
    assert snap.switch_aborts == 0
    assert check_all(mercury) == []
    _smoke(mercury)


@pytest.mark.parametrize("ncpus", TOPOLOGIES, ids=["up", "smp"])
def test_attach_rollback_restores_dirty_roots_exactly(ncpus):
    """The tracker-specific half of the rollback story: after a persistent
    mid-attach abort, the dirty/contribution/dead sets are bit-for-bit what
    native mode left (no phantom-clean roots), the tracker is distrusted,
    and the un-faulted retry rebuilds a table identical to a from-scratch
    recompute."""
    from repro.vmm.page_info import PageInfoTable

    mercury = _stack(ncpus)
    mercury.attach()
    mercury.detach()   # captures per-root contributions, trusts the tracker
    kernel = mercury.kernel
    cpu = mercury.machine.boot_cpu
    tracker = mercury.mmu_log

    # native-mode churn: dirty the parent root, create a new one
    pid = kernel.syscall(cpu, "fork")
    assert tracker.trusted
    dirty_before = set(tracker.dirty)
    contribs_before = sorted(tracker.contributions)
    dead_before = sorted(tracker.dead)
    assert dirty_before, "native-mode PT writes must mark their roots dirty"

    plan = faults.FaultPlan()
    plan.arm(faults.PT_TRANSFER_ABORT, times=None)
    with faults.injected(plan):
        with pytest.raises(SwitchAborted):
            mercury.attach()

    # restored exactly, but distrusted: the retry must take the full path
    assert set(tracker.dirty) == dirty_before
    assert sorted(tracker.contributions) == contribs_before
    assert sorted(tracker.dead) == dead_before
    assert not tracker.trusted
    assert check_all(mercury) == []

    full_before = tracker.full_recomputes
    rec = mercury.attach()
    assert rec is not None
    assert tracker.full_recomputes > full_before

    ref = PageInfoTable(mercury.machine.memory)
    ref.recompute(cpu, kernel.aspaces, mercury.domain.domain_id)
    live = mercury.vmm.page_info
    assert ref.semantically_equal(live)
    assert live.ref_count == ref.ref_count
    assert set(live.pinned) == set(ref.pinned)
    kernel.run_and_reap(cpu, kernel.procs.get(pid))
    _smoke(mercury)


def test_matrix_covers_every_registered_switch_site():
    """The matrix parametrization is derived from the registry, so a new
    site is automatically matrix-tested — this guards the derivation."""
    assert set(SITE_NAMES) == {s.name for s in faults.SWITCH_SITES}
    assert len(SITE_NAMES) >= 7


# ---------------------------------------------------------------------------
# the recovery matrix: every in-attached-mode VMM fault site × topology ×
# load state must end in a watchdog detection and a microreboot that leaves
# the stack fingerprint-exact and the guest alive
# ---------------------------------------------------------------------------

VMM_SITE_NAMES = [s.name for s in faults.VMM_SITES]
LOAD_STATES = ["quiescent", "busy"]


def _attached_stack(ncpus: int) -> Mercury:
    mercury = _stack(ncpus)
    assert mercury.attach() is not None
    # balloon=True keeps the stack representative of the full site
    # catalogue (the wedged balloon ring needs a balloon backend)
    mercury.host_guest(image_pages=8, balloon=True)
    return mercury


def _recovery_fingerprint(mercury: Mercury) -> dict:
    """Everything a VMM microreboot could get wrong, id-free: the rebooted
    VMM is a *new* object graph hosting the *same* kernel and guests, so the
    fingerprint compares semantics (counts, DPLs, owners, pinned frames),
    never object identities."""
    kernel = mercury.kernel
    return {
        "mode": mercury.mode,
        "vmm_active": mercury.vmm.active,
        "kernel_on_virtual_vo": kernel.vo is mercury.virtual_vo,
        "vo_refcount": kernel.vo.refcount,
        "guest_vo_refcounts": [g.vo.refcount for g in mercury._guests],
        "segment_dpl": kernel.vo.data.kernel_segment_dpl,
        # boot CPU only: a guest's boot stomps secondary GDTs with its own
        # firmware-style copies, so those reflect whichever kernel last
        # booted there — transient placement, not state recovery must keep
        "gdt_dpls": {sel: d.dpl
                     for sel, d in mercury.machine.boot_cpu.gdt.items()},
        "idt_owners": {c.cpu_id: getattr(c.idt_base, "owner", None)
                       for c in mercury.machine.cpus},
        # the same aspaces re-pin the same pgd frames after the reboot
        "pinned": set(mercury.vmm.page_info.pinned),
        "kernel_aspaces": len(mercury.domain.aspaces),
        "guest_aspaces": [len(g.vo.domain.aspaces) for g in mercury._guests],
        "guest_names": [g.name for g in mercury._guests],
        "backends": len(mercury._backends),
        "interrupts": {c.cpu_id: c.interrupts_enabled
                       for c in mercury.machine.cpus},
    }


@pytest.mark.parametrize("ncpus", TOPOLOGIES, ids=["up", "smp"])
@pytest.mark.parametrize("site_name", VMM_SITE_NAMES)
def test_quiescent_vmm_fault_recovers_fingerprint_exact(site_name, ncpus):
    """At rest: inject → one watchdog scan detects → microreboot → the
    stack is semantically identical and still runs work."""
    from repro.core.recovery import RecoveryManager
    from repro.watchdog import Watchdog

    mercury = _attached_stack(ncpus)
    watchdog = Watchdog(mercury, suspect_scans=1)
    manager = RecoveryManager(mercury)
    assert watchdog.scan() is None, "stack must start clean"
    before = _recovery_fingerprint(mercury)

    faults.inject_vmm_fault(site_name, mercury)
    verdict = watchdog.scan()
    assert verdict is not None, f"{site_name} escaped the watchdog"

    record = manager.recover(verdict)
    assert record.success
    assert record.mttr_cycles > 0
    assert record.guests_rehosted == 1
    assert _recovery_fingerprint(mercury) == before
    assert check_all(mercury) == []
    assert watchdog.scan() is None, "residual corruption after recovery"

    snap = _metrics(mercury)
    assert snap.watchdog_detections >= 1
    assert snap.recoveries == 1
    assert snap.recovery_failures == 0
    assert snap.emergency_detaches == 1
    _smoke(mercury)


@pytest.mark.parametrize("ncpus", TOPOLOGIES, ids=["up", "smp"])
@pytest.mark.parametrize("site_name", VMM_SITE_NAMES)
def test_busy_vmm_fault_recovers_under_workload(site_name, ncpus):
    """Under load: the same fault lands mid-workload under the sim
    scheduler; the campaign episode must detect, recover, finish the
    workload, and leave the guest answering syscalls."""
    from repro.bench.chaoscampaign import run_episode
    from repro.hw.machine import reset_machine_ids

    reset_machine_ids()
    episode = run_episode(index=0, site=site_name, variant=0,
                          trigger_cycles=2_000_000, workload="kbuild",
                          num_cpus=ncpus)
    assert episode.injected
    assert episode.detected, f"{site_name} escaped the watchdog under load"
    assert episode.recovered
    assert episode.workload_ok, episode.workload_error
    assert episode.guest_alive
    assert episode.invariant_failures == 0
    assert not episode.residual_verdict
    assert episode.success


def test_recovery_matrix_covers_every_registered_vmm_site():
    """Derived from the registry like the switch matrix above: a new VMM
    fault site is automatically recovery-tested."""
    assert set(VMM_SITE_NAMES) == {s.name for s in faults.VMM_SITES}
    assert len(VMM_SITE_NAMES) >= 6
    # the union registry keeps all three catalogues disjoint and complete
    assert set(s.name for s in faults.ALL_SITES) == (
        set(s.name for s in faults.SWITCH_SITES)
        | set(s.name for s in faults.WORKLOAD_SITES)
        | set(VMM_SITE_NAMES))
    assert not set(VMM_SITE_NAMES) & set(SITE_NAMES)
