"""Property: a lazy-MMU region is semantically transparent.

Driving the same PTE-update sequence through the virtual VO eagerly and
through a lazy region must leave both stacks with identical page tables,
identical TLB contents, and a page-info table the VMM considers
semantically equal — batching may only change *when* hypercalls happen and
what they cost, never what state they produce.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Machine, Mercury, small_config
from repro.hw.paging import Pte
from repro.params import PAGE_SIZE

#: scratch region away from the boot image
BASE = 0x4000_0000
NUM_SLOTS = 12

OPS = st.lists(
    st.tuples(
        st.sampled_from(["set", "clear", "flags", "tlb"]),
        st.integers(min_value=0, max_value=NUM_SLOTS - 1),
        st.booleans(),
    ),
    max_size=30,
)


def _stack():
    """A booted Mercury in virtual mode plus pre-allocated data frames.

    Both stacks are constructed identically, so the i-th allocated frame
    carries the same frame number in each — state is directly comparable.
    """
    machine = Machine(small_config())
    mercury = Mercury(machine)
    mercury.create_kernel(image_pages=8)
    mercury.attach()
    kernel = mercury.kernel
    frames = []
    for _ in range(NUM_SLOTS):
        frame = machine.memory.alloc(kernel.owner_id)
        kernel.vmem.claim_frame(frame)
        frames.append(frame)
    return mercury, frames


def _apply(mercury, frames, ops, batched: bool):
    kernel = mercury.kernel
    cpu = mercury.machine.boot_cpu
    aspace = kernel.scheduler.current.aspace
    vo = kernel.vo
    if batched:
        vo.lazy_mmu_begin(cpu)
    try:
        for kind, slot, writable in ops:
            vaddr = BASE + slot * PAGE_SIZE
            if kind == "set":
                vo.set_pte(cpu, aspace, vaddr,
                           Pte(frame=frames[slot], writable=writable))
            elif kind == "clear":
                vo.clear_pte(cpu, aspace, vaddr)
            elif kind == "flags":
                vo.update_pte_flags(cpu, aspace, vaddr,
                                    writable=writable, cow=not writable)
            else:  # a TLB flush is a mandatory drain point in both stacks
                vo.flush_tlb(cpu)
    finally:
        if batched:
            vo.lazy_mmu_end(cpu)
    return aspace, cpu


def _table(aspace):
    return {vaddr: (pte.frame, pte.present, pte.writable, pte.user, pte.cow)
            for vaddr, pte in aspace.mapped_items()}


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_batched_and_eager_updates_converge_to_identical_state(ops):
    eager_mc, eager_frames = _stack()
    lazy_mc, lazy_frames = _stack()
    assert eager_frames == lazy_frames  # identical construction

    eager_as, eager_cpu = _apply(eager_mc, eager_frames, ops, batched=False)
    lazy_as, lazy_cpu = _apply(lazy_mc, lazy_frames, ops, batched=True)

    assert _table(eager_as) == _table(lazy_as)
    assert dict(eager_cpu.tlb._entries) == dict(lazy_cpu.tlb._entries)
    assert eager_mc.vmm.page_info.semantically_equal(lazy_mc.vmm.page_info)
    # the queue is empty at rest in both stacks
    assert eager_mc.kernel.vo.lazy_mmu_pending() == 0
    assert lazy_mc.kernel.vo.lazy_mmu_pending() == 0


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_batching_never_costs_more_cycles(ops):
    """The whole point of the optimisation, stated as a property: for any
    update sequence, the batched path's cycle bill is <= the eager path's
    (equal when the sequence contains no pinned-table updates)."""
    eager_mc, eager_frames = _stack()
    lazy_mc, lazy_frames = _stack()
    start_eager = eager_mc.machine.boot_cpu.clock.cycles
    start_lazy = lazy_mc.machine.boot_cpu.clock.cycles
    assert start_eager == start_lazy  # identical boot cost

    _, eager_cpu = _apply(eager_mc, eager_frames, ops, batched=False)
    _, lazy_cpu = _apply(lazy_mc, lazy_frames, ops, batched=True)

    eager_cost = eager_cpu.clock.cycles - start_eager
    lazy_cost = lazy_cpu.clock.cycles - start_lazy
    assert lazy_cost <= eager_cost
