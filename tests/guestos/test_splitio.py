"""Split-driver I/O: blkfront/blkback and netfront/netback end to end."""

import pytest

from repro import Machine, small_config
from repro.core.virtual_vo import VirtualVO
from repro.guestos.fs import BLOCK_SIZE
from repro.guestos.kernel import Kernel
from repro.guestos.splitio import connect_split_block, connect_split_net
from repro.vmm.hypervisor import Hypervisor


@pytest.fixture
def xen_pair():
    """An active VMM with a dom0 (driver) kernel and a domU kernel wired
    over split I/O — the X-U topology."""
    machine = Machine(small_config(mem_kb=32768))
    vmm = Hypervisor(machine)
    vmm.warm_up()
    dom0 = vmm.create_domain("dom0", domain_id=0, is_driver_domain=True)
    vmm.activate()
    k0 = Kernel(machine, VirtualVO(machine, vmm, dom0), owner_id=0,
                name="dom0")
    dom0.guest = k0
    k0.boot(image_pages=8)
    domU = vmm.create_domain("domU", domain_id=1)
    kU = Kernel(machine, VirtualVO(machine, vmm, domU), owner_id=1,
                name="domU", has_devices=False)
    domU.guest = kU
    front_b, back_b = connect_split_block(kU, k0, vmm)
    front_n, back_n = connect_split_net(kU, k0, vmm,
                                        guest_addr="10.0.0.77:u")
    kU.boot(image_pages=8)
    return machine, vmm, k0, kU, front_b, back_b, front_n, back_n


def test_guest_block_write_read_roundtrip(xen_pair):
    machine, vmm, k0, kU, front_b, *_ = xen_pair
    cpu = machine.boot_cpu
    fd = kU.syscall(cpu, "open", "/guestfile", True, task=kU.scheduler.current)
    kU.syscall(cpu, "write", fd, "through-the-ring", BLOCK_SIZE)
    kU.syscall(cpu, "fsync", fd)
    block = kU.fs.inodes["/guestfile"].blocks[0]
    # the data must eventually land on the physical disk via blkback
    machine.run_until_idle()
    assert machine.disk.blocks[block] == "through-the-ring"
    assert front_b.requests > 0


def test_guest_cold_read_through_backend(xen_pair):
    machine, vmm, k0, kU, front_b, *_ = xen_pair
    cpu = machine.boot_cpu
    fd = kU.syscall(cpu, "open", "/cold", True)
    kU.syscall(cpu, "write", fd, "cold-data", BLOCK_SIZE)
    kU.syscall(cpu, "fsync", fd)
    machine.run_until_idle()
    kU.fs.cache.invalidate()
    kU.syscall(cpu, "lseek", fd, 0)
    assert kU.syscall(cpu, "read", fd, BLOCK_SIZE) == ["cold-data"]


def test_backend_grants_are_exercised(xen_pair):
    machine, vmm, k0, kU, front_b, back_b, *_ = xen_pair
    cpu = machine.boot_cpu
    fd = kU.syscall(cpu, "open", "/g", True)
    kU.syscall(cpu, "write", fd, "x", BLOCK_SIZE)
    kU.syscall(cpu, "fsync", fd)
    grants = vmm.grants.active_grants_of(1)
    assert len(grants) == 1
    assert grants[0].active_maps == 0  # mapped and unmapped per request


def test_guest_tx_reaches_wire(xen_pair):
    machine, vmm, k0, kU, _, _, front_n, back_n = xen_pair
    peer_machine = Machine(small_config(), clock=machine.clock)
    machine.link_to(peer_machine)
    cpu = machine.boot_cpu
    sock = kU.syscall(cpu, "socket", "udp")
    kU.syscall(cpu, "sendto", sock, "10.0.0.250", 1000)
    machine.clock.run_due()
    assert machine.nic.tx_packets == 1
    assert back_n.tx_handled == 1


def test_inbound_for_guest_routed_through_netback(xen_pair):
    machine, vmm, k0, kU, _, _, front_n, back_n = xen_pair
    from repro.hw.devices import Packet
    cpu = machine.boot_cpu
    kU.syscall(cpu, "socket", "udp")
    pkt = Packet("10.0.0.250", "10.0.0.77:u", "udp", 700, payload="inbound")
    # the frame arrives at the physical NIC; dom0 routes it up
    machine.nic.deliver(pkt)
    machine.poll()
    assert back_n.rx_forwarded == 1
    got = kU.syscall(cpu, "recvfrom", 1, False)
    assert got == "inbound"


def test_guest_io_costs_more_than_driver_domain(xen_pair):
    """The per-request ring/grant/event overhead must be visible — it is
    the X-U column's I/O tax."""
    machine, vmm, k0, kU, *_ = xen_pair
    cpu = machine.boot_cpu

    t0 = cpu.rdtsc()
    fd0 = k0.syscall(cpu, "open", "/d0", True)
    k0.syscall(cpu, "write", fd0, "x", BLOCK_SIZE)
    dom0_cost = cpu.rdtsc() - t0

    t0 = cpu.rdtsc()
    fdU = kU.syscall(cpu, "open", "/dU", True)
    kU.syscall(cpu, "write", fdU, "x", BLOCK_SIZE)
    domU_cost = cpu.rdtsc() - t0
    # cached writes don't touch the device in either domain, so the two
    # should be comparable; the ring tax appears on the flush path
    t0 = cpu.rdtsc()
    kU.syscall(cpu, "fsync", fdU)
    domU_flush = cpu.rdtsc() - t0
    assert domU_flush > cpu.cost.cyc_ring_hop  # the ring tax is visible
    assert kU.fs.cache.dirty == set()
