"""Split-driver I/O: blkfront/blkback and netfront/netback end to end."""

import pytest

from repro import Machine, small_config
from repro.core.virtual_vo import VirtualVO
from repro.errors import RingError
from repro.guestos.fs import BLOCK_SIZE
from repro.guestos.kernel import Kernel
from repro.guestos.splitio import (BlkFront, NetFront, connect_split_block,
                                   connect_split_net)
from repro.hw.devices import Packet
from repro.vmm.hypervisor import Hypervisor
from repro.vmm.rings import IoRing


@pytest.fixture
def xen_pair():
    """An active VMM with a dom0 (driver) kernel and a domU kernel wired
    over split I/O — the X-U topology."""
    machine = Machine(small_config(mem_kb=32768))
    vmm = Hypervisor(machine)
    vmm.warm_up()
    dom0 = vmm.create_domain("dom0", domain_id=0, is_driver_domain=True)
    vmm.activate()
    k0 = Kernel(machine, VirtualVO(machine, vmm, dom0), owner_id=0,
                name="dom0")
    dom0.guest = k0
    k0.boot(image_pages=8)
    domU = vmm.create_domain("domU", domain_id=1)
    kU = Kernel(machine, VirtualVO(machine, vmm, domU), owner_id=1,
                name="domU", has_devices=False)
    domU.guest = kU
    front_b, back_b = connect_split_block(kU, k0, vmm)
    front_n, back_n = connect_split_net(kU, k0, vmm,
                                        guest_addr="10.0.0.77:u")
    kU.boot(image_pages=8)
    return machine, vmm, k0, kU, front_b, back_b, front_n, back_n


def test_guest_block_write_read_roundtrip(xen_pair):
    machine, vmm, k0, kU, front_b, *_ = xen_pair
    cpu = machine.boot_cpu
    fd = kU.syscall(cpu, "open", "/guestfile", True, task=kU.scheduler.current)
    kU.syscall(cpu, "write", fd, "through-the-ring", BLOCK_SIZE)
    kU.syscall(cpu, "fsync", fd)
    block = kU.fs.inodes["/guestfile"].blocks[0]
    # the data must eventually land on the physical disk via blkback
    machine.run_until_idle()
    assert machine.disk.blocks[block] == "through-the-ring"
    assert front_b.requests > 0


def test_guest_cold_read_through_backend(xen_pair):
    machine, vmm, k0, kU, front_b, *_ = xen_pair
    cpu = machine.boot_cpu
    fd = kU.syscall(cpu, "open", "/cold", True)
    kU.syscall(cpu, "write", fd, "cold-data", BLOCK_SIZE)
    kU.syscall(cpu, "fsync", fd)
    machine.run_until_idle()
    kU.fs.cache.invalidate()
    kU.syscall(cpu, "lseek", fd, 0)
    assert kU.syscall(cpu, "read", fd, BLOCK_SIZE) == ["cold-data"]


def test_backend_grants_are_exercised(xen_pair):
    machine, vmm, k0, kU, front_b, back_b, *_ = xen_pair
    cpu = machine.boot_cpu
    fd = kU.syscall(cpu, "open", "/g", True)
    kU.syscall(cpu, "write", fd, "x", BLOCK_SIZE)
    kU.syscall(cpu, "fsync", fd)
    grants = vmm.grants.active_grants_of(1)
    assert len(grants) == 1
    assert grants[0].active_maps == 0  # mapped and unmapped per request


def test_guest_tx_reaches_wire(xen_pair):
    machine, vmm, k0, kU, _, _, front_n, back_n = xen_pair
    peer_machine = Machine(small_config(), clock=machine.clock)
    machine.link_to(peer_machine)
    cpu = machine.boot_cpu
    sock = kU.syscall(cpu, "socket", "udp")
    kU.syscall(cpu, "sendto", sock, "10.0.0.250", 1000)
    machine.clock.run_due()
    assert machine.nic.tx_packets == 1
    assert back_n.tx_handled == 1


def test_inbound_for_guest_routed_through_netback(xen_pair):
    machine, vmm, k0, kU, _, _, front_n, back_n = xen_pair
    cpu = machine.boot_cpu
    kU.syscall(cpu, "socket", "udp")
    pkt = Packet("10.0.0.250", "10.0.0.77:u", "udp", 700, payload="inbound")
    # the frame arrives at the physical NIC; dom0 routes it up, and the
    # guest's vcpu wakeup (a scheduled event) drains the rx ring
    machine.nic.deliver(pkt)
    machine.run_until_idle()
    assert back_n.rx_forwarded == 1
    got = kU.syscall(cpu, "recvfrom", 1, False)
    assert got == "inbound"


def test_guest_io_costs_more_than_driver_domain(xen_pair):
    """The per-request ring/grant/event overhead must be visible — it is
    the X-U column's I/O tax."""
    machine, vmm, k0, kU, *_ = xen_pair
    cpu = machine.boot_cpu

    t0 = cpu.rdtsc()
    fd0 = k0.syscall(cpu, "open", "/d0", True)
    k0.syscall(cpu, "write", fd0, "x", BLOCK_SIZE)
    dom0_cost = cpu.rdtsc() - t0

    t0 = cpu.rdtsc()
    fdU = kU.syscall(cpu, "open", "/dU", True)
    kU.syscall(cpu, "write", fdU, "x", BLOCK_SIZE)
    domU_cost = cpu.rdtsc() - t0
    # cached writes don't touch the device in either domain, so the two
    # should be comparable; the ring tax appears on the flush path
    t0 = cpu.rdtsc()
    kU.syscall(cpu, "fsync", fdU)
    domU_flush = cpu.rdtsc() - t0
    assert domU_flush > cpu.cost.cyc_ring_hop  # the ring tax is visible
    assert kU.fs.cache.dirty == set()


# ---------------------------------------------------------------------------
# batched datapath: notification coalescing and wedge guards
# ---------------------------------------------------------------------------

def _guest_channel_sends(vmm, domain_id=1):
    return sum(ch.sends for (dom, _), ch in vmm.events._channels.items()
               if dom == domain_id)


def test_rx_notification_rides_the_event_channel(xen_pair):
    """The guest-bound rx kick must go through ``vmm.events.send`` —
    charged, counted, and coalescible — never a direct frontend call."""
    machine, vmm, k0, kU, _, _, front_n, back_n = xen_pair
    cpu = machine.boot_cpu
    kU.syscall(cpu, "socket", "udp")
    sends0 = _guest_channel_sends(vmm)
    machine.nic.deliver(Packet("10.0.0.250", "10.0.0.77:u", "udp", 700,
                               payload="ding"))
    machine.run_until_idle()
    assert front_n.rx == 1
    assert _guest_channel_sends(vmm) - sends0 >= 1


def test_rx_burst_coalesces_into_one_upcall(xen_pair):
    """Frames landing inside the guest's wakeup window share the pending
    event and drain in a single rx_poll pass."""
    machine, vmm, k0, kU, _, _, front_n, back_n = xen_pair
    cpu = machine.boot_cpu
    kU.syscall(cpu, "socket", "udp")
    stats = vmm.io_stats
    sent0, supp0 = stats.notifies_sent, stats.notifies_suppressed
    for i in range(6):
        machine.nic.deliver(Packet("10.0.0.250", "10.0.0.77:u", "udp", 700,
                                   payload=f"p{i}"))
    machine.run_until_idle()
    assert back_n.rx_forwarded == 6
    assert front_n.rx == 6
    assert stats.notifies_sent - sent0 <= 2  # not one notify per frame
    assert stats.notifies_suppressed - supp0 >= 4


def test_tx_burst_shares_one_doorbell(xen_pair):
    """A multi-segment send rides the xmit_more hint: the whole burst is
    queued, flushed onto the ring once, and rings the doorbell once."""
    machine, vmm, k0, kU, _, _, front_n, back_n = xen_pair
    from repro.bench.configs import BareMetalVO
    peer_machine = Machine(small_config(), clock=machine.clock, name="peer")
    peer_kernel = Kernel(peer_machine, BareMetalVO(peer_machine),
                         owner_id=0, name="peer")
    peer_kernel.boot()
    machine.link_to(peer_machine)
    cpu = machine.boot_cpu
    stats = vmm.io_stats
    sock = kU.syscall(cpu, "socket", "udp")
    sent0 = stats.notifies_sent
    kU.syscall(cpu, "sendto", sock, "10.0.0.250", 8 * 1448)  # 8 segments
    machine.run_until_idle()
    assert back_n.tx_handled == 8
    # one tx doorbell + at most one coalesced completion notify — not 8
    assert stats.notifies_sent - sent0 <= 2


def test_tx_sched_latency_paid_per_notify_not_per_packet(xen_pair):
    """The driver-domain wakeup cost is charged only when a doorbell is
    actually delivered; queued packets in the same flush ride for free."""
    machine, vmm, k0, kU, *_ = xen_pair
    cpu = machine.boot_cpu
    notified = []
    tx, rx = IoRing(size=64), IoRing(size=64)
    front = NetFront(kU, tx, rx, notify_backend=lambda c: notified.append(1))
    pkts = [Packet("a", "b", "udp", 512, payload=i) for i in range(6)]
    t0 = cpu.rdtsc()
    for pkt in pkts[:-1]:
        front.transmit(cpu, pkt, more=True)
    front.transmit(cpu, pkts[-1], more=False)
    cost = cpu.cost
    expected = (6 * cost.cyc_net_copy_per_kb           # per-packet copy
                + cost.cyc_ring_hop                    # first ring entry
                + 5 * cost.cyc_ring_entry_batched      # batched entries
                + cost.cyc_guest_sched_latency)        # ONE wakeup
    assert cpu.rdtsc() - t0 == expected
    assert notified == [1]
    assert front.stats.ring_batches == 1
    assert front.stats.ring_batched_entries == 6


def test_tx_coalesce_timer_flushes_a_stranded_tail(xen_pair):
    """A burst that promises ``more`` but never flushes is pushed out by
    the delayed-doorbell timer — the hint can defer, not lose, packets."""
    machine, vmm, k0, kU, *_ = xen_pair
    cpu = machine.boot_cpu
    notified = []
    tx, rx = IoRing(size=64), IoRing(size=64)
    front = NetFront(kU, tx, rx, notify_backend=lambda c: notified.append(1))
    front.transmit(cpu, Packet("a", "b", "udp", 256, payload="tail"),
                   more=True)
    assert tx.has_requests() is False  # still queued, not published
    machine.run_until_idle()
    assert tx.has_requests()  # the timer flushed it onto the ring
    assert notified == [1]


def test_blkfront_wedged_backend_raises(xen_pair):
    """Satellite guard: a backend that never responds must surface as a
    RingError, not an infinite retry loop on stale free_request_slots."""
    machine, vmm, k0, kU, *_ = xen_pair
    cpu = machine.boot_cpu
    ring = IoRing(size=4)
    front = BlkFront(kU, ring, notify_backend=lambda c: None)
    with pytest.raises(RingError, match="wedged"):
        front.write_blocks(cpu, [(i, f"d{i}") for i in range(3)])


def test_blkfront_single_write_wedged_backend_raises(xen_pair):
    machine, vmm, k0, kU, *_ = xen_pair
    cpu = machine.boot_cpu
    ring = IoRing(size=4)
    front = BlkFront(kU, ring, notify_backend=lambda c: None)
    with pytest.raises(RingError, match="did not respond"):
        front.write_block(cpu, 7, "data")


def test_fsync_batch_notifies_once(xen_pair):
    """An fsync of a multi-block file submits the whole dirty set as one
    ring batch with at most one doorbell."""
    machine, vmm, k0, kU, front_b, back_b, *_ = xen_pair
    cpu = machine.boot_cpu
    stats = vmm.io_stats
    fd = kU.syscall(cpu, "open", "/batched", True)
    for i in range(6):
        kU.syscall(cpu, "lseek", fd, i * BLOCK_SIZE)
        kU.syscall(cpu, "write", fd, f"blk{i}", BLOCK_SIZE)
    sent0, batches0 = stats.notifies_sent, stats.ring_batches
    entries0 = stats.ring_batched_entries
    kU.syscall(cpu, "fsync", fd)
    # the 6 dirty blocks go out as ONE submission batch (plus the barrier
    # flush op): one doorbell per batch, never one per block
    assert stats.notifies_sent - sent0 <= 4
    assert stats.ring_batches - batches0 >= 2
    assert stats.ring_batched_entries - entries0 >= 12  # 6 reqs + 6 rsps
    machine.run_until_idle()
    assert kU.fs.cache.dirty == set()
