"""Process lifecycle: fork/exec/exit/wait, COW semantics, frame hygiene."""

import pytest

from repro.errors import NoSuchProcess, SyscallError
from repro.guestos.process import TaskState


def test_boot_creates_init(kernel):
    init = kernel.scheduler.current
    assert init.name == "init"
    assert init.state == TaskState.RUNNING
    assert init.aspace.mapped_count() == 16


def test_fork_returns_child_pid(kernel, cpu):
    pid = kernel.syscall(cpu, "fork")
    child = kernel.procs.get(pid)
    assert child.parent is kernel.scheduler.current
    assert child.state == TaskState.READY


def test_fork_child_shares_frames_readonly(kernel, cpu):
    parent = kernel.scheduler.current
    pid = kernel.syscall(cpu, "fork")
    child = kernel.procs.get(pid)
    for vaddr in parent.aspace.mapped_vaddrs():
        p = parent.aspace.get_pte(vaddr)
        c = child.aspace.get_pte(vaddr)
        assert c.frame == p.frame
        assert not p.writable and not c.writable
        assert kernel.vmem.frame_refs(p.frame) == 2


def test_cow_write_isolates_parent_and_child(kernel, cpu):
    """After the child writes a shared page, parent and child must see
    different frames — the COW guarantee fork depends on."""
    parent = kernel.scheduler.current
    vaddr = next(iter(parent.aspace.mapped_vaddrs()))
    pid = kernel.syscall(cpu, "fork")
    child = kernel.procs.get(pid)
    kernel.switch_to(cpu, child)
    kernel.vmem.access(cpu, child, vaddr, write=True)
    c = child.aspace.get_pte(vaddr)
    p = parent.aspace.get_pte(vaddr)
    assert c.frame != p.frame
    assert c.writable
    assert kernel.vmem.frame_refs(p.frame) == 1
    assert kernel.vmem.frame_refs(c.frame) == 1


def test_cow_last_reference_reuses_frame(kernel, cpu):
    parent = kernel.scheduler.current
    vaddr = next(iter(parent.aspace.mapped_vaddrs()))
    pid = kernel.syscall(cpu, "fork")
    child = kernel.procs.get(pid)
    kernel.run_and_reap(cpu, child)  # child gone; parent sole owner again
    old_frame = parent.aspace.get_pte(vaddr).frame
    kernel.vmem.access(cpu, parent, vaddr, write=True)
    pte = parent.aspace.get_pte(vaddr)
    assert pte.frame == old_frame  # no copy needed
    assert pte.writable and not pte.cow


def test_exec_replaces_image(kernel, cpu):
    pid = kernel.syscall(cpu, "fork")
    child = kernel.procs.get(pid)
    old_aspace = child.aspace
    kernel.switch_to(cpu, child)
    kernel.syscall(cpu, "exec", "newprog", 24, task=child)
    assert child.name == "newprog"
    assert child.aspace is not old_aspace
    assert child.aspace.mapped_count() == 24


def test_exit_and_wait_reap(kernel, cpu):
    parent = kernel.scheduler.current
    pid = kernel.syscall(cpu, "fork")
    child = kernel.procs.get(pid)
    kernel.switch_to(cpu, child)
    kernel.syscall(cpu, "exit", 7, task=child)
    assert child.state == TaskState.ZOMBIE
    assert child.exit_code == 7
    kernel.switch_to(cpu, parent)
    got_pid, code = kernel.syscall(cpu, "wait")
    assert (got_pid, code) == (pid, 7)
    with pytest.raises(NoSuchProcess):
        kernel.procs.get(pid)


def test_wait_without_zombie_errors(kernel, cpu):
    with pytest.raises(SyscallError) as e:
        kernel.syscall(cpu, "wait")
    assert e.value.errno == "ECHILD"


def test_fork_exit_cycle_leaks_no_frames(kernel, cpu):
    free_before = kernel.machine.memory.free_frames
    for _ in range(5):
        pid = kernel.syscall(cpu, "fork")
        kernel.run_and_reap(cpu, kernel.procs.get(pid))
    assert kernel.machine.memory.free_frames == free_before


def test_fork_copies_fd_table(kernel, cpu):
    fd = kernel.syscall(cpu, "open", "/f", True)
    pid = kernel.syscall(cpu, "fork")
    child = kernel.procs.get(pid)
    assert fd in child.fds
    child.fds[fd][1] = 4096  # child's offset moves independently
    assert kernel.scheduler.current.fds[fd][1] == 0


def test_pids_monotonic(kernel, cpu):
    pids = [kernel.syscall(cpu, "fork") for _ in range(3)]
    assert pids == sorted(pids)
    assert len(set(pids)) == 3


def test_fork_records_selector_dpl(kernel, cpu):
    """The child's stack-cached selector DPL — the thing a mode switch
    must fix up (§5.1.2)."""
    pid = kernel.syscall(cpu, "fork")
    child = kernel.procs.get(pid)
    assert child.stack_cached_selector_dpl == \
        kernel.vo.data.kernel_segment_dpl
