"""Reliable delivery over a lossy wire — the §5.2 claim, demonstrated.

"For network devices, since the packets loss during the migration could be
solved at the network protocol level, Mercury currently does not decouple
the network device drivers before the migration."
"""

import pytest

from repro import Machine, small_config
from repro.bench.configs import BareMetalVO
from repro.guestos.kernel import Kernel
from repro.guestos.net import MSS


@pytest.fixture
def pair():
    a = Machine(small_config())
    b = Machine(small_config(), clock=a.clock)
    link = a.link_to(b)
    ka = Kernel(a, BareMetalVO(a), name="snd")
    kb = Kernel(b, BareMetalVO(b), name="rcv")
    ka.boot(image_pages=4)
    kb.boot(image_pages=4)
    return ka, kb, link


def _drain(ka, kb, rounds=300):
    clock = ka.machine.clock
    for _ in range(rounds):
        deadline = clock.next_deadline()
        if deadline is not None and deadline > clock.cycles:
            clock.cycles = deadline
        fired = clock.run_due()
        handled = ka.machine.poll() + kb.machine.poll()
        if not fired and not handled and clock.next_deadline() is None:
            break


def _transfer(ka, kb, n_segments, link=None, drop_at=None,
              max_rounds=60):
    ca, cb = ka.machine.boot_cpu, kb.machine.boot_cpu
    s = ka.syscall(ca, "socket", "tcp")
    kb.syscall(cb, "socket", "tcp")
    segments = [(i, MSS, f"seg-{i}") for i in range(n_segments)]
    rounds = 0
    while not ka.net.reliable_done(s, n_segments):
        if drop_at is not None and rounds == drop_at and link is not None:
            link.drop_next = 6   # a blackout hits mid-transfer
        ka.net.reliable_send_window(ca, s, kb.net_addr, segments, window=4)
        _drain(ka, kb)
        rounds += 1
        assert rounds < max_rounds, "transfer did not converge"
    return ka.net.sockets[s], kb.net.sockets[1]


def test_lossless_transfer_in_order(pair):
    ka, kb, link = pair
    tx, rx = _transfer(ka, kb, 12)
    assert rx.rx_delivered == [f"seg-{i}" for i in range(12)]
    assert tx.retransmissions == 0


def test_transfer_survives_packet_loss(pair):
    """Frames vanish on the wire mid-transfer; the protocol retransmits
    and the receiver still sees every byte exactly once, in order."""
    ka, kb, link = pair
    tx, rx = _transfer(ka, kb, 16, link=link, drop_at=1)
    assert link.dropped > 0
    assert tx.retransmissions > 0
    assert rx.rx_delivered == [f"seg-{i}" for i in range(16)]
    assert len(rx.rx_delivered) == 16  # no duplicates delivered


def test_out_of_order_arrival_reassembled(pair):
    """Dropping only the *first* frame forces later segments to queue
    out-of-order, then drain once the retransmission lands."""
    ka, kb, link = pair
    link.drop_next = 1  # exactly the first data frame dies
    tx, rx = _transfer(ka, kb, 6)
    assert rx.rx_delivered == [f"seg-{i}" for i in range(6)]
    assert tx.retransmissions >= 1


def test_total_blackout_then_recovery(pair):
    """Everything the sender puts on the wire during the blackout is
    lost (a migration window, per §5.2); the transfer completes after."""
    ka, kb, link = pair
    link.drop_next = 10**6
    ca = ka.machine.boot_cpu
    s = ka.syscall(ca, "socket", "tcp")
    kb.syscall(kb.machine.boot_cpu, "socket", "tcp")
    segments = [(i, MSS, f"seg-{i}") for i in range(8)]
    ka.net.reliable_send_window(ca, s, kb.net_addr, segments, window=8)
    _drain(ka, kb)
    assert not ka.net.reliable_done(s, 8)   # nothing got through
    link.drop_next = 0                       # the guest reconnected
    rounds = 0
    while not ka.net.reliable_done(s, 8):
        ka.net.reliable_send_window(ca, s, kb.net_addr, segments, window=8)
        _drain(ka, kb)
        rounds += 1
        assert rounds < 40
    assert kb.net.sockets[1].rx_delivered == [f"seg-{i}" for i in range(8)]
