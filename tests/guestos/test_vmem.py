"""Virtual memory: mmap/munmap, demand paging, protection, brk."""

import pytest

from repro.errors import SyscallError
from repro.params import PAGE_SIZE


def test_mmap_demand_pages_on_touch(kernel, cpu):
    task = kernel.scheduler.current
    base = kernel.syscall(cpu, "mmap", 4 * PAGE_SIZE)
    assert task.aspace.get_pte(base) is None  # nothing mapped yet
    faults0 = kernel.vmem.minor_faults
    kernel.vmem.access(cpu, task, base, write=True)
    assert kernel.vmem.minor_faults == faults0 + 1
    assert task.aspace.get_pte(base).present


def test_mmap_populate_maps_eagerly(kernel, cpu):
    task = kernel.scheduler.current
    base = kernel.syscall(cpu, "mmap", 4 * PAGE_SIZE, True)
    for i in range(4):
        assert task.aspace.get_pte(base + i * PAGE_SIZE).present


def test_mmap_zero_length_rejected(kernel, cpu):
    with pytest.raises(SyscallError):
        kernel.syscall(cpu, "mmap", 0)


def test_munmap_frees_frames(kernel, cpu):
    # force the mmap-area leaf PT page into existence first so the
    # measured delta is data frames only
    kernel.syscall(cpu, "mmap", PAGE_SIZE, True)
    free0 = kernel.machine.memory.free_frames
    base = kernel.syscall(cpu, "mmap", 8 * PAGE_SIZE, True)
    assert kernel.machine.memory.free_frames == free0 - 8
    kernel.syscall(cpu, "munmap", base, 8 * PAGE_SIZE)
    assert kernel.machine.memory.free_frames == free0


def test_munmap_partial_range_rejected(kernel, cpu):
    base = kernel.syscall(cpu, "mmap", 8 * PAGE_SIZE, True)
    with pytest.raises(SyscallError):
        kernel.syscall(cpu, "munmap", base, 4 * PAGE_SIZE)


def test_mappings_do_not_overlap(kernel, cpu):
    a = kernel.syscall(cpu, "mmap", 4 * PAGE_SIZE)
    b = kernel.syscall(cpu, "mmap", 4 * PAGE_SIZE)
    assert abs(a - b) >= 4 * PAGE_SIZE


def test_hole_reuse_after_munmap(kernel, cpu):
    a = kernel.syscall(cpu, "mmap", 4 * PAGE_SIZE)
    kernel.syscall(cpu, "munmap", a, 4 * PAGE_SIZE)
    b = kernel.syscall(cpu, "mmap", 4 * PAGE_SIZE)
    assert b == a


def test_access_outside_vma_is_segv(kernel, cpu):
    task = kernel.scheduler.current
    with pytest.raises(SyscallError) as e:
        kernel.vmem.access(cpu, task, 0x7000_0000, write=False)
    assert e.value.errno == "SIGSEGV"


def test_mprotect_write_fault(kernel, cpu):
    task = kernel.scheduler.current
    base = kernel.syscall(cpu, "mmap", 2 * PAGE_SIZE, True)
    kernel.syscall(cpu, "mprotect", base, 2 * PAGE_SIZE, False)
    faults0 = kernel.vmem.prot_faults
    with pytest.raises(SyscallError):
        kernel.vmem.access(cpu, task, base, write=True)
    assert kernel.vmem.prot_faults == faults0 + 1
    # reads still fine
    kernel.vmem.access(cpu, task, base, write=False)


def test_mprotect_unmapped_rejected(kernel, cpu):
    with pytest.raises(SyscallError):
        kernel.syscall(cpu, "mprotect", 0x7000_0000, PAGE_SIZE, False)


def test_mprotect_restore_write(kernel, cpu):
    task = kernel.scheduler.current
    base = kernel.syscall(cpu, "mmap", PAGE_SIZE, True)
    kernel.syscall(cpu, "mprotect", base, PAGE_SIZE, False)
    kernel.syscall(cpu, "mprotect", base, PAGE_SIZE, True)
    kernel.vmem.access(cpu, task, base, write=True)  # no fault


def test_brk_grows_heap_lazily(kernel, cpu):
    task = kernel.scheduler.current
    old = task.brk
    new = kernel.syscall(cpu, "brk", old + 4 * PAGE_SIZE)
    assert new == old + 4 * PAGE_SIZE
    kernel.vmem.access(cpu, task, old, write=True)  # demand-paged


def test_brk_never_shrinks(kernel, cpu):
    task = kernel.scheduler.current
    old = task.brk
    assert kernel.syscall(cpu, "brk", old - PAGE_SIZE) == old


def test_tlb_serves_repeat_access_without_refault(kernel, cpu):
    task = kernel.scheduler.current
    base = kernel.syscall(cpu, "mmap", PAGE_SIZE)
    kernel.vmem.access(cpu, task, base, write=True)
    faults = kernel.vmem.minor_faults
    hits0 = cpu.tlb.hits
    kernel.vmem.access(cpu, task, base, write=True)
    assert kernel.vmem.minor_faults == faults
    assert cpu.tlb.hits == hits0 + 1


def test_demand_zero_cost_roughly_matches_table1(kernel, cpu):
    """Native page-fault latency should be near Table 1's 1.22 µs."""
    task = kernel.scheduler.current
    base = kernel.syscall(cpu, "mmap", 32 * PAGE_SIZE)
    t0 = cpu.rdtsc()
    for i in range(32):
        kernel.vmem.access(cpu, task, base + i * PAGE_SIZE, write=True)
    per_fault_us = cpu.cost.us(cpu.rdtsc() - t0) / 32
    assert 0.5 < per_fault_us < 2.5
