"""Network stack: sockets, segmentation, ICMP, two-host traffic."""

import pytest

from repro import Machine, small_config
from repro.core.native_vo import NativeVO
from repro.errors import NetworkError
from repro.guestos.kernel import Kernel
from repro.guestos.net import MSS


@pytest.fixture
def pair():
    """Two booted native kernels on linked machines."""
    a = Machine(small_config())
    b = Machine(small_config(), clock=a.clock)
    a.link_to(b)
    ka = Kernel(a, NativeVO(a), name="ka")
    kb = Kernel(b, NativeVO(b), name="kb")
    ka.boot(image_pages=4)
    kb.boot(image_pages=4)
    return ka, kb


def _drain(ka, kb):
    clock = ka.machine.clock
    for _ in range(200):
        deadline = clock.next_deadline()
        if deadline is not None and deadline > clock.cycles:
            clock.cycles = deadline
        fired = clock.run_due()
        handled = ka.machine.poll() + kb.machine.poll()
        if not fired and not handled and clock.next_deadline() is None:
            break


def test_socket_protocol_validation(kernel, cpu):
    assert kernel.syscall(cpu, "socket", "udp") >= 1
    with pytest.raises(NetworkError):
        kernel.syscall(cpu, "socket", "sctp")


def test_udp_send_segments_at_mss(pair):
    ka, kb = pair
    cpu = ka.machine.boot_cpu
    sock = ka.syscall(cpu, "socket", "udp")
    nbytes = 3 * MSS + 100
    sent = ka.syscall(cpu, "sendto", sock, kb.net_addr, nbytes)
    assert sent == nbytes
    _drain(ka, kb)
    assert ka.machine.nic.tx_packets == 4  # 3 full + 1 tail


def test_udp_delivery_to_peer_socket(pair):
    ka, kb = pair
    ca, cb = ka.machine.boot_cpu, kb.machine.boot_cpu
    kb.syscall(cb, "socket", "udp")
    sock = ka.syscall(ca, "socket", "udp")
    ka.syscall(ca, "sendto", sock, kb.net_addr, 500, "payload")
    _drain(ka, kb)
    got = kb.syscall(cb, "recvfrom", kb.net.sockets[1].sock_id, False)
    assert got == "payload"


def test_recvfrom_nonblocking_empty(pair):
    ka, kb = pair
    cpu = ka.machine.boot_cpu
    sock = ka.syscall(cpu, "socket", "udp")
    assert ka.syscall(cpu, "recvfrom", sock, False) is None


def test_icmp_echo_reflected(pair):
    """The receiving stack auto-replies to echoes — ping needs no server
    process."""
    ka, kb = pair
    from repro.workloads.iperf import run_ping
    rtt = run_ping(ka, kb, count=2)
    assert rtt > 0
    assert kb.net.icmp_replies == 2


def test_ping_rtt_in_lan_regime(pair):
    """Native LAN RTT should be on the order of 100-200 µs (gigabit
    switch + two native stacks), as in the paper's era."""
    ka, kb = pair
    from repro.workloads.iperf import run_ping
    rtt = run_ping(ka, kb, count=3)
    assert 50 < rtt < 400


def test_tx_charges_per_packet_cost(pair):
    ka, kb = pair
    cpu = ka.machine.boot_cpu
    sock = ka.syscall(cpu, "socket", "udp")
    t0 = cpu.rdtsc()
    ka.syscall(cpu, "sendto", sock, kb.net_addr, MSS)
    assert cpu.rdtsc() - t0 >= cpu.cost.cyc_net_per_packet


def test_bad_socket_rejected(kernel, cpu):
    with pytest.raises(NetworkError):
        kernel.syscall(cpu, "sendto", 42, "x", 10)


def test_route_table_overrides_local_demux(pair):
    ka, kb = pair
    routed = []
    kb.route_table["10.9.9.9"] = lambda cpu, pkt: routed.append(pkt)
    cpu = ka.machine.boot_cpu
    sock = ka.syscall(cpu, "socket", "udp")
    ka.syscall(cpu, "sendto", sock, "10.9.9.9", 100)
    _drain(ka, kb)
    assert len(routed) == 1
