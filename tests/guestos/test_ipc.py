"""Pipes and signals."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SignalDelivered, SyscallError
from repro.guestos.ipc import PIPE_CAPACITY, Pipe, SIGSEGV, SIGTERM, SIGUSR1
from repro.guestos.process import TaskState
from repro.params import PAGE_SIZE


# ---------------------------------------------------------------------------
# the Pipe object
# ---------------------------------------------------------------------------

def test_pipe_fifo():
    p = Pipe()
    p.write("a", 1)
    p.write("b", 1)
    assert p.read() == ("a", 1)
    assert p.read() == ("b", 1)


def test_pipe_empty_eagain():
    with pytest.raises(SyscallError) as e:
        Pipe().read()
    assert e.value.errno == "EAGAIN"


def test_pipe_capacity():
    p = Pipe(capacity=10)
    p.write("x", 10)
    with pytest.raises(SyscallError) as e:
        p.write("y", 1)
    assert e.value.errno == "EAGAIN"
    p.read()
    p.write("y", 1)  # room again


def test_pipe_eof_after_writer_closes():
    p = Pipe()
    p.write("last", 4)
    p.write_open = False
    assert p.read() == ("last", 4)
    assert p.read() == (None, 0)  # EOF, not EAGAIN


def test_pipe_epipe_without_reader():
    p = Pipe()
    p.read_open = False
    with pytest.raises(SyscallError) as e:
        p.write("x", 1)
    assert e.value.errno == "EPIPE"


# ---------------------------------------------------------------------------
# syscall surface
# ---------------------------------------------------------------------------

def test_pipe_syscall_roundtrip(kernel, cpu):
    rfd, wfd = kernel.syscall(cpu, "pipe")
    kernel.syscall(cpu, "write", wfd, b"token", 5)
    assert kernel.syscall(cpu, "read", rfd) == b"token"


def test_pipe_wrong_end_rejected(kernel, cpu):
    rfd, wfd = kernel.syscall(cpu, "pipe")
    with pytest.raises(SyscallError):
        kernel.syscall(cpu, "write", rfd, b"x", 1)
    with pytest.raises(SyscallError):
        kernel.syscall(cpu, "read", wfd)


def test_pipe_shared_across_fork(kernel, cpu):
    """The lmbench pattern: parent writes, the forked child reads."""
    rfd, wfd = kernel.syscall(cpu, "pipe")
    pid = kernel.syscall(cpu, "fork")
    child = kernel.procs.get(pid)
    kernel.syscall(cpu, "write", wfd, b"hello-child", 11)
    kernel.switch_to(cpu, child)
    assert kernel.syscall(cpu, "read", rfd, task=child) == b"hello-child"


def test_pipe_close_ends_independently(kernel, cpu):
    rfd, wfd = kernel.syscall(cpu, "pipe")
    kernel.syscall(cpu, "write", wfd, b"x", 1)
    kernel.syscall(cpu, "close", wfd)
    assert kernel.syscall(cpu, "read", rfd) == b"x"
    assert kernel.syscall(cpu, "read", rfd) is None  # EOF


def test_pipe_end_stays_open_while_any_task_holds_it(kernel, cpu):
    rfd, wfd = kernel.syscall(cpu, "pipe")
    parent = kernel.scheduler.current
    pid = kernel.syscall(cpu, "fork")
    child = kernel.procs.get(pid)
    kernel.syscall(cpu, "close", wfd)            # parent drops its write end
    kernel.syscall(cpu, "write", wfd, b"k", 1, task=child)  # child still can
    assert kernel.syscall(cpu, "read", rfd) == b"k"


# ---------------------------------------------------------------------------
# signals
# ---------------------------------------------------------------------------

def test_sigsegv_handler_catches_prot_fault(kernel, cpu):
    """lmbench's lat_sig pattern: a handler fields the protection fault
    and execution continues past it."""
    task = kernel.scheduler.current
    base = kernel.syscall(cpu, "mmap", PAGE_SIZE, True)
    kernel.syscall(cpu, "mprotect", base, PAGE_SIZE, False)
    caught = []
    kernel.syscall(cpu, "sigaction", SIGSEGV,
                   lambda t, sig, info: caught.append(info))
    with pytest.raises(SignalDelivered):
        kernel.vmem.access(cpu, task, base, write=True)
    assert caught == [base]
    assert task.signals.delivered == 1


def test_unhandled_sigsegv_keeps_classic_behaviour(kernel, cpu):
    task = kernel.scheduler.current
    with pytest.raises(SyscallError) as e:
        kernel.vmem.access(cpu, task, 0x7000_0000, write=True)
    assert e.value.errno == "SIGSEGV"
    assert task.signals.pending_fatal == SIGSEGV


def test_kill_with_handler(kernel, cpu):
    got = []
    pid = kernel.syscall(cpu, "fork")
    child = kernel.procs.get(pid)
    kernel.ipc.register_handler(child, SIGUSR1,
                                lambda t, s, i: got.append(s))
    kernel.syscall(cpu, "kill", pid, SIGUSR1)
    assert got == [SIGUSR1]
    assert child.state != TaskState.ZOMBIE


def test_kill_default_terminates(kernel, cpu):
    pid = kernel.syscall(cpu, "fork")
    child = kernel.procs.get(pid)
    kernel.syscall(cpu, "kill", pid, SIGTERM)
    assert child.state == TaskState.ZOMBIE
    assert child.exit_code == 128 + SIGTERM


def test_fork_copies_handlers_not_shared(kernel, cpu):
    got = []
    kernel.syscall(cpu, "sigaction", SIGUSR1, lambda t, s, i: got.append(1))
    pid = kernel.syscall(cpu, "fork")
    child = kernel.procs.get(pid)
    assert SIGUSR1 in child.signals.handlers
    child.signals.handlers.clear()        # child's change...
    parent = kernel.scheduler.current
    assert SIGUSR1 in parent.signals.handlers  # ...does not affect parent


def test_handler_survives_mode_switch(mercury):
    """Signal dispositions are plain kernel state: unaffected by
    self-virtualization."""
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    got = []
    k.syscall(cpu, "sigaction", SIGUSR1, lambda t, s, i: got.append(s))
    mercury.attach()
    k.syscall(cpu, "kill", k.scheduler.current.pid, SIGUSR1)
    mercury.detach()
    k.syscall(cpu, "kill", k.scheduler.current.pid, SIGUSR1)
    assert got == [SIGUSR1, SIGUSR1]


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(1, 2000)), max_size=40))
def test_property_pipe_conserves_bytes(ops):
    """Writes in, reads out: byte counts balance and order is preserved."""
    p = Pipe(capacity=PIPE_CAPACITY)
    written, read = [], []
    for is_write, n in ops:
        try:
            if is_write:
                p.write(n, n)
                written.append(n)
            else:
                data, nbytes = p.read()
                if nbytes:
                    read.append(nbytes)
        except SyscallError:
            pass
    assert read == written[:len(read)]
    assert p.buffered_bytes == sum(written) - sum(read)
