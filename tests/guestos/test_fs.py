"""Filesystem: namespace, data paths, cache, journal, writeback."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import FileSystemError, SyscallError
from repro.guestos.fs import BLOCK_SIZE, BufferCache


def test_create_open_write_read(kernel, cpu):
    fd = kernel.syscall(cpu, "open", "/a", True)
    kernel.syscall(cpu, "write", fd, "hello", 10)
    kernel.syscall(cpu, "lseek", fd, 0)
    data = kernel.syscall(cpu, "read", fd, 10)
    assert data == ["hello"]


def test_open_missing_without_create(kernel, cpu):
    with pytest.raises(FileSystemError):
        kernel.syscall(cpu, "open", "/nope", False)


def test_write_grows_file(kernel, cpu):
    fd = kernel.syscall(cpu, "open", "/grow", True)
    kernel.syscall(cpu, "write", fd, "x", 3 * BLOCK_SIZE)
    st_ = kernel.syscall(cpu, "stat", "/grow")
    assert st_["size"] == 3 * BLOCK_SIZE
    assert st_["blocks"] == 3


def test_read_past_eof_returns_empty(kernel, cpu):
    fd = kernel.syscall(cpu, "open", "/short", True)
    kernel.syscall(cpu, "write", fd, "x", 10)
    kernel.syscall(cpu, "lseek", fd, BLOCK_SIZE * 5)
    assert kernel.syscall(cpu, "read", fd, 100) == []


def test_offsets_advance(kernel, cpu):
    fd = kernel.syscall(cpu, "open", "/off", True)
    kernel.syscall(cpu, "write", fd, "a", BLOCK_SIZE)
    kernel.syscall(cpu, "write", fd, "b", BLOCK_SIZE)
    kernel.syscall(cpu, "lseek", fd, 0)
    assert kernel.syscall(cpu, "read", fd, BLOCK_SIZE) == ["a"]
    assert kernel.syscall(cpu, "read", fd, BLOCK_SIZE) == ["b"]


def test_unlink_removes(kernel, cpu):
    kernel.syscall(cpu, "open", "/gone", True)
    kernel.syscall(cpu, "unlink", "/gone")
    assert not kernel.fs.exists("/gone")
    with pytest.raises(FileSystemError):
        kernel.syscall(cpu, "stat", "/gone")


def test_fsync_persists_to_disk(kernel, cpu):
    fd = kernel.syscall(cpu, "open", "/durable", True)
    kernel.syscall(cpu, "write", fd, "persist-me", BLOCK_SIZE)
    block = kernel.fs.inodes["/durable"].blocks[0]
    assert block not in kernel.machine.disk.blocks  # still only cached
    kernel.syscall(cpu, "fsync", fd)
    assert kernel.machine.disk.blocks[block] == "persist-me"


def test_fsync_commits_journal(kernel, cpu):
    fd = kernel.syscall(cpu, "open", "/j", True)
    kernel.syscall(cpu, "write", fd, "x", 10)
    commits0 = kernel.fs.journal_commits
    kernel.syscall(cpu, "fsync", fd)
    assert kernel.fs.journal_commits == commits0 + 1


def test_fsync_flushes_only_this_files_blocks(kernel, cpu):
    fa = kernel.syscall(cpu, "open", "/a", True)
    fb = kernel.syscall(cpu, "open", "/b", True)
    kernel.syscall(cpu, "write", fa, "A", BLOCK_SIZE)
    kernel.syscall(cpu, "write", fb, "B", BLOCK_SIZE)
    kernel.syscall(cpu, "fsync", fa)
    blk_b = kernel.fs.inodes["/b"].blocks[0]
    assert blk_b not in kernel.machine.disk.blocks
    assert blk_b in kernel.fs.cache.dirty  # still pending


def test_read_hits_cache_after_write(kernel, cpu):
    fd = kernel.syscall(cpu, "open", "/c", True)
    kernel.syscall(cpu, "write", fd, "warm", BLOCK_SIZE)
    hits0 = kernel.fs.cache.hits
    kernel.syscall(cpu, "lseek", fd, 0)
    kernel.syscall(cpu, "read", fd, BLOCK_SIZE)
    assert kernel.fs.cache.hits == hits0 + 1


def test_read_miss_goes_to_disk(kernel, cpu):
    fd = kernel.syscall(cpu, "open", "/m", True)
    kernel.syscall(cpu, "write", fd, "cold", BLOCK_SIZE)
    kernel.syscall(cpu, "fsync", fd)
    kernel.fs.cache.invalidate()
    kernel.syscall(cpu, "lseek", fd, 0)
    assert kernel.syscall(cpu, "read", fd, BLOCK_SIZE) == ["cold"]


def test_writeback_partial(kernel, cpu):
    fd = kernel.syscall(cpu, "open", "/wb", True)
    kernel.syscall(cpu, "write", fd, "w", 6 * BLOCK_SIZE)
    assert len(kernel.fs.cache.dirty) == 6
    flushed = kernel.fs.writeback(cpu, max_blocks=2)
    assert flushed == 2
    assert len(kernel.fs.cache.dirty) == 4


def test_sync_all(kernel, cpu):
    fd = kernel.syscall(cpu, "open", "/all", True)
    kernel.syscall(cpu, "write", fd, "x", 3 * BLOCK_SIZE)
    assert kernel.fs.sync_all(cpu) == 3
    assert not kernel.fs.cache.dirty


def test_bad_fd_rejected(kernel, cpu):
    with pytest.raises(SyscallError) as e:
        kernel.syscall(cpu, "read", 99, 10)
    assert e.value.errno == "EBADF"
    with pytest.raises(SyscallError):
        kernel.syscall(cpu, "close", 99)


def test_cache_eviction_writes_back_dirty():
    cache = BufferCache(capacity=2)
    assert cache.put(1, "a", dirty=True) == []
    assert cache.put(2, "b", dirty=True) == []
    evicted = cache.put(3, "c", dirty=False)
    assert evicted == [(1, "a")]  # oldest dirty block surfaced
    assert 1 not in cache.dirty


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 5),
                          st.text("ab", min_size=1, max_size=4)),
                min_size=1, max_size=25))
def test_property_read_after_write_consistency(ops):
    """For any write pattern, reading a block back returns the last value
    written to it."""
    from repro import Machine, small_config
    from repro.core.native_vo import NativeVO
    from repro.guestos.kernel import Kernel

    machine = Machine(small_config())
    k = Kernel(machine, NativeVO(machine), name="prop")
    k.boot(image_pages=4)
    cpu = machine.boot_cpu
    fds = {}
    shadow: dict[tuple[int, int], str] = {}
    for fileno, blockno, payload in ops:
        path = f"/f{fileno}"
        if path not in fds:
            fds[path] = k.syscall(cpu, "open", path, True)
        fd = fds[path]
        k.syscall(cpu, "lseek", fd, blockno * BLOCK_SIZE)
        k.syscall(cpu, "write", fd, payload, BLOCK_SIZE)
        shadow[(fileno, blockno)] = payload
    for (fileno, blockno), expect in shadow.items():
        fd = fds[f"/f{fileno}"]
        k.syscall(cpu, "lseek", fd, blockno * BLOCK_SIZE)
        assert k.syscall(cpu, "read", fd, BLOCK_SIZE) == [expect]
