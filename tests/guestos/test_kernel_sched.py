"""Kernel glue and the scheduler: dispatch, switching, waiting, SMP."""

import pytest

from repro import Machine, small_config
from repro.core.native_vo import NativeVO
from repro.errors import GuestOSError, SyscallError
from repro.guestos.kernel import Kernel
from repro.guestos.process import TaskState
from repro.hw.cpu import PrivilegeLevel


def test_double_boot_rejected(kernel):
    with pytest.raises(GuestOSError):
        kernel.boot()


def test_unknown_syscall(kernel, cpu):
    with pytest.raises(SyscallError) as e:
        kernel.syscall(cpu, "frobnicate")
    assert e.value.errno == "ENOSYS"


def test_syscall_returns_to_user_mode(kernel, cpu):
    kernel.syscall(cpu, "getpid")
    assert cpu.pl == PrivilegeLevel.PL3


def test_syscall_exits_kernel_even_on_error(kernel, cpu):
    with pytest.raises(SyscallError):
        kernel.syscall(cpu, "read", 99, 10)
    assert cpu.pl == PrivilegeLevel.PL3


def test_syscall_override_takes_precedence(kernel, cpu):
    kernel.syscall_overrides["getpid"] = lambda k, c, t: 4242
    assert kernel.syscall(cpu, "getpid") == 4242
    del kernel.syscall_overrides["getpid"]
    assert kernel.syscall(cpu, "getpid") != 4242


def test_context_switch_loads_cr3(kernel, cpu):
    pid = kernel.syscall(cpu, "fork")
    child = kernel.procs.get(pid)
    kernel.switch_to(cpu, child)
    assert cpu.cr3 == child.aspace.pgd_frame
    assert child.state == TaskState.RUNNING
    assert kernel.scheduler.current is child


def test_switch_requeues_previous(kernel, cpu):
    init = kernel.scheduler.current
    pid = kernel.syscall(cpu, "fork")
    kernel.switch_to(cpu, kernel.procs.get(pid))
    assert init in kernel.scheduler.runqueue
    assert init.state == TaskState.READY


def test_yield_round_robins(kernel, cpu):
    init = kernel.scheduler.current
    pid = kernel.syscall(cpu, "fork")
    child = kernel.procs.get(pid)
    kernel.syscall(cpu, "sched_yield")
    assert kernel.scheduler.current is child
    kernel.syscall(cpu, "sched_yield", task=child)
    assert kernel.scheduler.current is init


def test_user_compute_charges_and_accounts(kernel, cpu):
    t0 = cpu.rdtsc()
    kernel.user_compute(cpu, 10.0)
    assert cpu.rdtsc() - t0 == 10 * cpu.cost.freq_mhz
    assert kernel.scheduler.current.utime_cycles >= 10 * cpu.cost.freq_mhz


def test_wait_for_deadlock_detected(kernel, cpu):
    with pytest.raises(GuestOSError):
        kernel.wait_for(cpu, lambda: False)


def test_wait_for_advances_to_event(kernel, cpu):
    hit = []
    kernel.machine.clock.schedule(10_000, lambda: hit.append(1))
    kernel.wait_for(cpu, lambda: bool(hit))
    assert hit == [1]


def test_smp_lock_charged_only_on_smp():
    up = Machine(small_config(num_cpus=1))
    k1 = Kernel(up, NativeVO(up), name="up")
    t0 = up.clock.cycles
    k1.smp_lock(up.boot_cpu)
    assert up.clock.cycles == t0

    smp = Machine(small_config(num_cpus=2))
    k2 = Kernel(smp, NativeVO(smp), name="smp")
    t0 = smp.clock.cycles
    k2.smp_lock(smp.boot_cpu)
    assert smp.clock.cycles == t0 + smp.config.cost.cyc_lock


def test_smp_fork_costs_more_than_up():
    """Table 2's rows sit above Table 1's: SMP locking is charged."""
    results = {}
    for cpus in (1, 2):
        m = Machine(small_config(num_cpus=cpus))
        k = Kernel(m, NativeVO(m), name=f"k{cpus}")
        k.boot(image_pages=16)
        cpu = m.boot_cpu
        t0 = cpu.rdtsc()
        pid = k.syscall(cpu, "fork")
        k.run_and_reap(cpu, k.procs.get(pid))
        results[cpus] = cpu.rdtsc() - t0
    assert results[2] > results[1]


def test_spawn_process_returns_execed_child(kernel, cpu):
    child = kernel.spawn_process(cpu, "worker", image_pages=8)
    assert child.name == "worker"
    assert child.aspace.mapped_count() == 8
    assert kernel.scheduler.current is not child  # parent resumed


def test_block_io_without_driver_fails():
    m = Machine(small_config())
    k = Kernel(m, NativeVO(m), name="nodisk", has_devices=False)
    with pytest.raises(GuestOSError):
        k.block_read(m.boot_cpu, 0)
    with pytest.raises(GuestOSError):
        k.net_transmit(m.boot_cpu, None)
