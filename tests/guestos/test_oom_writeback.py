"""OOM killer and the periodic writeback daemon."""

import pytest

from repro import Machine, small_config
from repro.core.native_vo import NativeVO
from repro.errors import OutOfMemory
from repro.guestos.kernel import Kernel
from repro.guestos.process import TaskState
from repro.params import PAGE_SIZE


def _tiny_kernel(mem_kb=512):
    machine = Machine(small_config(mem_kb=mem_kb))
    k = Kernel(machine, NativeVO(machine), name="tiny")
    k.boot(image_pages=4)
    return k, machine.boot_cpu


def test_oom_killer_sacrifices_largest_task():
    k, cpu = _tiny_kernel(mem_kb=700)
    # a fat victim process
    fat_pid = k.syscall(cpu, "fork")
    fat = k.procs.get(fat_pid)
    base = k.vmem.mmap(cpu, fat, 24 * PAGE_SIZE, populate=True)
    # the current task now demand-pages until memory runs dry
    me = k.scheduler.current
    mine = k.syscall(cpu, "mmap", 512 * PAGE_SIZE)  # lazy, huge
    free = k.machine.memory.free_frames
    for i in range(free + 5):  # guaranteed to cross the limit
        k.vmem.access(cpu, me, mine + i * PAGE_SIZE, write=True)
        if fat.state == TaskState.ZOMBIE:
            break
    assert fat.state == TaskState.ZOMBIE
    assert fat.exit_code == 137
    assert k.vmem.oom_kills >= 1
    # the survivor keeps running
    assert k.syscall(cpu, "getpid") == me.pid


def test_oom_with_no_victim_still_raises():
    k, cpu = _tiny_kernel(mem_kb=512)
    me = k.scheduler.current
    base = k.syscall(cpu, "mmap", 512 * PAGE_SIZE)
    with pytest.raises(OutOfMemory):
        for i in range(512):
            k.vmem.access(cpu, me, base + i * PAGE_SIZE, write=True)
    assert k.vmem.oom_kills == 0  # nobody to kill but init and me


def test_init_is_never_the_victim():
    k, cpu = _tiny_kernel(mem_kb=700)
    init = k.procs.get(1)
    child_pid = k.syscall(cpu, "fork")
    child = k.procs.get(child_pid)
    k.switch_to(cpu, child)
    base = k.syscall(cpu, "mmap", 512 * PAGE_SIZE, task=child)
    try:
        for i in range(512):
            k.vmem.access(cpu, child, base + i * PAGE_SIZE, write=True)
    except OutOfMemory:
        pass
    assert init.state != TaskState.ZOMBIE


def test_writeback_daemon_drains_dirty_blocks(kernel, cpu):
    fd = kernel.syscall(cpu, "open", "/wb", True)
    kernel.syscall(cpu, "write", fd, "x", 8 * 4096)
    assert len(kernel.fs.cache.dirty) == 8
    kernel.start_writeback_daemon(interval_ms=1, blocks_per_pass=4)
    clock = kernel.machine.clock
    for _ in range(3):
        clock.advance(int(1.2 * 1000 * 3000))
        clock.run_due()
        kernel.machine.poll()
    kernel.stop_writeback_daemon()
    assert len(kernel.fs.cache.dirty) == 0
    block = kernel.fs.inodes["/wb"].blocks[0]
    kernel.machine.run_until_idle()
    assert block in kernel.machine.disk.blocks


def test_writeback_daemon_stop(kernel, cpu):
    fd = kernel.syscall(cpu, "open", "/wb2", True)
    kernel.syscall(cpu, "write", fd, "x", 4 * 4096)
    kernel.start_writeback_daemon(interval_ms=1)
    kernel.stop_writeback_daemon()
    clock = kernel.machine.clock
    clock.advance(int(5 * 1000 * 3000))
    clock.run_due()
    assert len(kernel.fs.cache.dirty) == 4  # nothing flushed after stop