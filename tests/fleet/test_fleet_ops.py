"""Fleet operations: determinism, conservation, and wave guarantees.

The headline properties from the issue:

- ``workers=k`` fleet output is byte-identical to ``workers=1`` for
  every scenario (hypothesis over fleet shape and seed, inline shards);
- request conservation — every generated request is dispatched exactly
  once and completes exactly once, nothing lost across drain waves,
  evacuations, and chaos recoveries;
- the wave never routes to a draining machine under the switch-aware
  policy, and *no* policy ever routes to a switching/down machine;
- the latency histogram carried through ``MetricsSnapshot.merge`` equals
  the frontend's own per-phase merge.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.fleet import (FleetOrchestrator, LatencyHistogram,
                         fleet_latency_histogram, run_fleet)

#: small-but-real fleet defaults for property runs: gap sized so a
#: 2-machine fleet is still comfortably under-loaded
QUICK = dict(transport="inline", mean_gap_cycles=150_000,
             mean_service_cycles=120_000, log_requests=True)


def _run(scenario, machines, seed, workers, **kw):
    args = dict(QUICK)
    args.update(kw)
    return run_fleet(scenario=scenario, machines=machines, seed=seed,
                     workers=workers, requests=machines * 12, **args)


# -- determinism -----------------------------------------------------------

@settings(max_examples=6, deadline=None)
@given(scenario=st.sampled_from(("liveupdate", "maintenance", "cluster")),
       machines=st.integers(min_value=3, max_value=5),
       seed=st.integers(min_value=0, max_value=2**31))
def test_workers_k_byte_identical_to_workers_1(scenario, machines, seed):
    base = _run(scenario, machines, seed, workers=1)
    base_bytes = base.canonical_output()
    for k in (2, 4):
        sharded = _run(scenario, machines, seed, workers=k)
        assert sharded.canonical_output() == base_bytes
        assert sharded.fleet.metrics == base.fleet.metrics


def test_same_seed_reproduces_different_seed_differs():
    a = _run("liveupdate", 3, seed=42, workers=1)
    b = _run("liveupdate", 3, seed=42, workers=1)
    c = _run("liveupdate", 3, seed=43, workers=1)
    assert a.canonical_output() == b.canonical_output()
    assert c.canonical_output() != a.canonical_output()


# -- conservation ----------------------------------------------------------

@settings(max_examples=6, deadline=None)
@given(scenario=st.sampled_from(("liveupdate", "maintenance", "cluster")),
       machines=st.integers(min_value=3, max_value=5),
       seed=st.integers(min_value=0, max_value=2**31),
       arrival=st.sampled_from(("poisson", "pareto")))
def test_request_conservation(scenario, machines, seed, arrival):
    res = _run(scenario, machines, seed, workers=2, arrival=arrival)
    fr = res.frontend
    assert fr["dispatched"] == fr["requests"]
    assert fr["completed"] == fr["requests"]
    assert fr["in_flight_residual"] == 0
    served = 0
    for i, row in res.fleet.node_results.items():
        if i == 0:
            continue
        assert row["queued_residual"] == 0
        served += row["served"]
    assert served == fr["requests"]


# -- wave routing guarantees -----------------------------------------------

def _wave_intervals(frontend):
    """(machine, closed-out interval) pairs from the drain log; a
    machine that never rejoined (evacuated) keeps an open end."""
    for entry in frontend["drain_log"]:
        yield (entry["machine"], entry["drain_at"], entry["switch_at"],
               entry["ready_at"])


@settings(max_examples=6, deadline=None)
@given(scenario=st.sampled_from(("liveupdate", "maintenance", "cluster")),
       machines=st.integers(min_value=3, max_value=5),
       seed=st.integers(min_value=0, max_value=2**31))
def test_wave_never_routes_to_draining_machine(scenario, machines, seed):
    """Switch-aware: from the drain announcement to the rejoin, not one
    request lands on the machine."""
    res = _run(scenario, machines, seed, workers=1)
    fr = res.frontend
    assert fr["forced_dispatches"] == 0
    log = fr["request_log"]
    for machine, drain_at, switch_at, ready_at in _wave_intervals(fr):
        assert drain_at <= switch_at
        if ready_at >= 0:
            assert switch_at <= ready_at
        for _req, target, cycle, _phase in log:
            if target != machine:
                continue
            in_wave = cycle >= drain_at and (ready_at < 0
                                             or cycle < ready_at)
            assert not in_wave, (
                f"request dispatched to machine {machine} at {cycle} "
                f"inside its wave [{drain_at}, {ready_at})")


@pytest.mark.parametrize("policy", ["round-robin", "least-outstanding"])
def test_no_policy_routes_to_switching_machine(policy):
    """Drain-blind policies may hit DRAINING, but the hard guarantee —
    never dispatch into the switch itself — holds for all of them."""
    res = _run("liveupdate", 4, seed=9, workers=1, policy=policy)
    fr = res.frontend
    assert fr["completed"] == fr["requests"]
    log = fr["request_log"]
    hit_draining = 0
    for machine, drain_at, switch_at, ready_at in _wave_intervals(fr):
        for _req, target, cycle, _phase in log:
            if target != machine:
                continue
            assert not (switch_at <= cycle and
                        (ready_at < 0 or cycle < ready_at))
            if drain_at <= cycle < switch_at:
                hit_draining += 1
    # bookkeeping sanity: the counter exists even if this seed's drains
    # are instant (nothing outstanding when the wave arrives)
    assert hit_draining >= 0


# -- scenario effects ------------------------------------------------------

def test_rolling_update_patches_every_serving_machine():
    res = _run("liveupdate", 4, seed=3, workers=2)
    fr = res.frontend
    assert fr["updated_machines"] == [1, 2, 3, 4]
    for i, row in res.fleet.node_results.items():
        if i == 0:
            continue
        assert row["updates_applied"] == 1
        assert row["mode"] == "native"          # detached after the patch
        assert row["mode_switches"] >= 2        # attach + detach at least
    # the wave interval is recorded and ordered
    assert 0 <= fr["wave_start_cycle"] < fr["wave_end_cycle"]


def test_maintenance_round_trip():
    res = _run("maintenance", 4, seed=5, workers=2, maintain_count=2)
    fr = res.frontend
    assert len(fr["maintained_machines"]) == 2
    for i in fr["maintained_machines"]:
        row = res.fleet.node_results[i]
        assert row["maintenances"] == 1
        assert row["mode"] == "native"


def test_cluster_evacuation_promotes_spares():
    res = _run("cluster", 5, seed=8, workers=2,
               evacuations=2, chaos_events=1)
    fr = res.frontend
    assert len(fr["evacuated_machines"]) == 2
    for i in fr["evacuated_machines"]:
        row = res.fleet.node_results[i]
        assert row["evacuated"] is True
        assert row["queued_residual"] == 0     # drained before leaving
    # chaos struck, was detected, and the machine recovered in place
    assert len(fr["chaos_log"]) == 1
    (victim, _site, detected, mttr, _elapsed) = fr["chaos_log"][0]
    assert detected is True
    assert mttr >= 0
    assert res.fleet.node_results[victim]["chaos_recoveries"] == 1
    assert res.fleet.node_results[victim]["mode"] == "native"
    # conservation held through failures
    assert fr["completed"] == fr["requests"]


# -- metrics carry ---------------------------------------------------------

def test_merged_snapshot_carries_fleet_latency_histogram():
    res = _run("liveupdate", 3, seed=13, workers=2)
    merged = fleet_latency_histogram(res)
    assert merged.count == res.frontend["completed"]
    # identical to what the frontend's per-phase histograms merge to:
    # the snapshot path through MetricsSnapshot.merge loses nothing
    phase_counts = sum(res.frontend["percentiles"][p]["count"]
                      for p in ("steady", "wave", "after"))
    assert phase_counts == merged.count
    assert merged.percentile(0.5) is not None


# -- configuration validation ----------------------------------------------

def test_orchestrator_validation():
    with pytest.raises(ValueError, match="unknown scenario"):
        FleetOrchestrator(scenario="bluegreen")
    with pytest.raises(ValueError, match="unknown policy"):
        FleetOrchestrator(policy="random")
    with pytest.raises(ValueError, match="unknown arrival"):
        FleetOrchestrator(arrival="uniform")
    with pytest.raises(ValueError, match="at least two"):
        FleetOrchestrator(machines=1)


def test_process_transport_matches_inline():
    serial = _run("liveupdate", 3, seed=21, workers=1)
    procs = run_fleet(scenario="liveupdate", machines=3, seed=21,
                      workers=2, requests=36, transport="process",
                      mean_gap_cycles=150_000, mean_service_cycles=120_000,
                      log_requests=True)
    assert procs.canonical_output() == serial.canonical_output()
