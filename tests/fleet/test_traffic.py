"""Open-loop traffic generator: seed reproducibility + distribution shape.

The fleet's determinism rests on the arrival schedule being a pure
function of ``(spec, seed, n)``; its realism rests on the two renewal
processes actually having the statistics they claim (Poisson: CV = 1;
bounded Pareto: CV well above 1, same configured mean rate)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.fleet import OpenLoopTraffic, TrafficSpec, arrival_stats


def _gaps(kind, seed, n, mean_gap=45_000):
    t = OpenLoopTraffic(TrafficSpec(kind=kind, mean_gap_cycles=mean_gap),
                        seed)
    return t.gaps(n)


# -- determinism -----------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(kind=st.sampled_from(("poisson", "pareto")),
       seed=st.integers(min_value=0, max_value=2**63),
       n=st.integers(min_value=1, max_value=200))
def test_schedule_is_seed_reproducible(kind, seed, n):
    spec = TrafficSpec(kind=kind)
    a = OpenLoopTraffic(spec, seed).schedule(n, start_cycle=1000)
    b = OpenLoopTraffic(spec, seed).schedule(n, start_cycle=1000)
    assert a == b


def test_different_seeds_differ():
    assert _gaps("poisson", 1, 50) != _gaps("poisson", 2, 50)
    assert _gaps("pareto", 1, 50) != _gaps("pareto", 2, 50)


def test_arrival_and_service_streams_are_independent():
    """Drawing more gaps must not perturb the service draws."""
    t1 = OpenLoopTraffic(TrafficSpec(), 9)
    t1.gaps(100)
    services_after_gaps = [t1._service() for _ in range(20)]
    t2 = OpenLoopTraffic(TrafficSpec(), 9)
    assert [t2._service() for _ in range(20)] == services_after_gaps


@settings(max_examples=15, deadline=None)
@given(kind=st.sampled_from(("poisson", "pareto")),
       seed=st.integers(min_value=0, max_value=2**31),
       n=st.integers(min_value=1, max_value=100),
       start=st.integers(min_value=0, max_value=10**9))
def test_arrivals_strictly_increase(kind, seed, n, start):
    sched = OpenLoopTraffic(TrafficSpec(kind=kind), seed).schedule(
        n, start_cycle=start)
    assert len(sched) == n
    last = start
    for at, svc in sched:
        assert at > last
        assert svc >= 1
        last = at


# -- distribution shape ----------------------------------------------------

@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_poisson_mean_and_cv(seed):
    mean, cv = arrival_stats(_gaps("poisson", seed, 4000))
    assert 0.90 * 45_000 < mean < 1.10 * 45_000
    assert 0.85 < cv < 1.15


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_pareto_mean_and_heavy_tail(seed):
    mean, cv = arrival_stats(_gaps("pareto", seed, 4000))
    # same configured rate (the analytic-mean rescale), fatter tail: the
    # sample CV of a bounded Pareto fluctuates, but it must sit clearly
    # above the Poisson band
    assert 0.80 * 45_000 < mean < 1.25 * 45_000
    assert cv > 1.3


def test_pareto_gaps_are_bounded():
    """Rescaled support: no gap exceeds spread x the per-unit scale."""
    spec = TrafficSpec(kind="pareto", mean_gap_cycles=45_000)
    gaps = OpenLoopTraffic(spec, 3).gaps(4000)
    assert min(gaps) >= 1
    assert max(gaps) > 10 * min(gaps)  # the tail is actually exercised


# -- spec validation -------------------------------------------------------

def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown arrival"):
        TrafficSpec(kind="uniform")


def test_degenerate_rates_rejected():
    with pytest.raises(ValueError):
        TrafficSpec(mean_gap_cycles=0)
    with pytest.raises(ValueError):
        TrafficSpec(mean_service_cycles=0)


def test_empty_stats():
    assert arrival_stats([]) == (0.0, 0.0)
