"""Streaming latency histogram: bucket error bound, percentile readout,
and merge algebra (the partition-invariance half lives in
``tests/integration/test_metrics_merge.py``)."""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.fleet import LatencyHistogram, SIG_BITS, bucket_of

samples = st.lists(st.integers(min_value=0, max_value=2**40),
                   min_size=0, max_size=300)


# -- bucketing -------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(v=st.integers(min_value=0, max_value=2**62))
def test_bucket_error_bound(v):
    b = bucket_of(v)
    assert 0 <= b <= v
    assert (v - b) <= v * 2.0**-(SIG_BITS - 1)  # relative error < 1.6%
    assert bucket_of(b) == b              # idempotent (bucket reps are fixed)


def test_small_values_exact():
    for v in range(0, 2**SIG_BITS):
        assert bucket_of(v) == v


# -- recording and readout -------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(vals=samples)
def test_percentiles_within_bucket_error_of_exact(vals):
    hist = LatencyHistogram()
    for v in vals:
        hist.record(v)
    assert hist.count == len(vals)
    assert hist.total == sum(vals)
    if not vals:
        assert hist.percentile(0.99) is None
        return
    ordered = sorted(vals)
    for q in (0.5, 0.95, 0.99, 0.999):
        exact = ordered[max(1, math.ceil(q * len(vals))) - 1]
        got = hist.percentile(q)
        # the readout is the exact order statistic's bucket floor
        assert got == bucket_of(exact)


def test_summary_shape():
    hist = LatencyHistogram()
    for v in (100, 200, 300_000):
        hist.record(v)
    s = hist.summary(freq_mhz=3000)
    assert s["count"] == 3
    assert s["p50_cycles"] == bucket_of(200)
    assert s["p999_cycles"] == bucket_of(300_000)
    assert s["p50_us"] == round(bucket_of(200) / 3000, 3)
    assert set(s) >= {"p50_cycles", "p95_cycles", "p99_cycles",
                      "p999_cycles", "max_cycles"}


# -- merge algebra ---------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(a=samples, b=samples, c=samples)
def test_merge_is_associative_and_commutative(a, b, c):
    def h(vals):
        out = LatencyHistogram()
        for v in vals:
            out.record(v)
        return out

    left = h(a).merge(h(b)).merge(h(c))
    right = h(a).merge(h(b).merge(h(c)))
    flipped = h(c).merge(h(a)).merge(h(b))
    assert left == right == flipped
    assert left == h(a + b + c)


@settings(max_examples=30, deadline=None)
@given(vals=samples)
def test_from_counts_round_trip(vals):
    hist = LatencyHistogram()
    for v in vals:
        hist.record(v)
    rebuilt = LatencyHistogram.from_counts(hist.buckets)
    assert rebuilt.buckets == hist.buckets
    assert rebuilt.count == hist.count
    # totals are bucket-floor approximations after a snapshot round trip
    assert rebuilt.total <= hist.total
    for q in (0.5, 0.99):
        assert rebuilt.percentile(q) == hist.percentile(q)


def test_merge_all_empty():
    assert LatencyHistogram.merge_all([]) == LatencyHistogram()
    assert LatencyHistogram().mean == 0.0
    assert LatencyHistogram().max_bucket == 0
