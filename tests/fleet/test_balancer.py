"""Load-balancer policies, lifecycle states, and routability rules."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.fleet import LoadBalancer, MachineState, NoRoutableMachine


def test_round_robin_cycles_in_index_order():
    lb = LoadBalancer([1, 2, 3], policy="round-robin")
    picks = []
    for _ in range(6):
        i = lb.pick()
        lb.dispatched(i)
        picks.append(i)
    assert picks == [1, 2, 3, 1, 2, 3]


def test_least_outstanding_prefers_idle_machine():
    lb = LoadBalancer([1, 2, 3], policy="least-outstanding")
    lb.dispatched(1)
    lb.dispatched(1)
    lb.dispatched(2)
    assert lb.pick() == 3
    lb.dispatched(3)
    assert lb.pick() == 2  # ties broken by lower index


def test_switch_aware_skips_draining_but_least_outstanding_does_not():
    aware = LoadBalancer([1, 2], policy="switch-aware")
    naive = LoadBalancer([1, 2], policy="least-outstanding")
    for lb in (aware, naive):
        lb.dispatched(2)      # machine 1 now has the fewest outstanding
        lb.mark_draining(1)
    assert aware.pick() == 2  # drain respected
    assert naive.pick() == 1  # drain invisible to the naive policy


def test_switching_and_down_never_routable_under_any_policy():
    for policy in ("round-robin", "least-outstanding", "switch-aware"):
        lb = LoadBalancer([1, 2], policy=policy)
        lb.mark_switching(1)
        assert lb.pick() == 2
        lb.mark_down(2)
        with pytest.raises(NoRoutableMachine):
            lb.pick()


def test_spares_held_out_until_promoted():
    lb = LoadBalancer([1, 2, 3], spares=[3])
    assert lb.spare_machines() == [3]
    assert lb.serving_machines() == [1, 2]
    for _ in range(5):
        assert lb.pick() != 3
        lb.dispatched(lb.pick())
    lb.mark_ready(3)
    lb.dispatched(1)
    lb.dispatched(2)
    assert lb.pick() == 3


def test_drain_bookkeeping():
    lb = LoadBalancer([1, 2])
    lb.dispatched(1)
    lb.mark_draining(1)
    assert not lb.drained(1)
    lb.completed(1)
    assert lb.drained(1)
    with pytest.raises(RuntimeError, match="nothing outstanding"):
        lb.completed(1)


def test_validation():
    with pytest.raises(ValueError, match="unknown policy"):
        LoadBalancer([1], policy="random")
    with pytest.raises(ValueError, match="at least one machine"):
        LoadBalancer([])
    with pytest.raises(KeyError):
        LoadBalancer([1]).mark_down(7)


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=1, max_value=8),
       policy=st.sampled_from(("round-robin", "least-outstanding",
                               "switch-aware")),
       ops=st.lists(st.integers(min_value=0, max_value=30), max_size=40))
def test_pick_never_returns_unroutable_machine(n, policy, ops):
    """Whatever the dispatch/state history, a pick is READY (or DRAINING
    only under the drain-blind policies)."""
    lb = LoadBalancer(range(n), policy=policy)
    states = (MachineState.READY, MachineState.DRAINING,
              MachineState.SWITCHING, MachineState.DOWN, MachineState.SPARE)
    for op in ops:
        machine, action = op % n, op % 5
        if action == 4:
            try:
                lb.completed(machine)
            except RuntimeError:
                pass
        else:
            lb.mark(machine, states[action])
        try:
            pick = lb.pick()
        except NoRoutableMachine:
            continue
        lb.dispatched(pick)
        ok = (MachineState.READY,) if policy == "switch-aware" else (
            MachineState.READY, MachineState.DRAINING)
        assert lb.state[pick] in ok
