"""Guest-domain fleet serving: traffic flows through hosted ballooned
guests, the picker never routes below a memory floor, the elastic
controller runs under load, and shard count never changes a byte."""

from __future__ import annotations

import pytest

from repro.core.mercury import Mode
from repro.fleet.node import ServiceNode
from repro.fleet.orchestrator import run_fleet
from repro.hw.machine import reset_machine_ids


@pytest.fixture
def node():
    reset_machine_ids()
    return ServiceNode(1, seed=0, guest_domains=2)


def test_node_hosts_ballooned_guests(node):
    assert node.mercury.mode is Mode.PARTIAL_VIRTUAL
    assert len(node.guests) == 2
    doms = node.mercury.vmm.domains
    for guest in node.guests:
        dom = doms[guest.owner_id]
        assert dom.mem_pages == 48
        assert dom.mem_floor == 16
        assert guest.owner_id in node.mercury.balloons
    assert node.elastic is not None


def test_picker_round_robins_over_guests(node):
    picks = [node._pick_server() for _ in range(4)]
    assert picks == [node.guests[0], node.guests[1],
                     node.guests[0], node.guests[1]]
    assert node.floor_skips == 0


def test_picker_skips_domain_below_floor(node):
    doms = node.mercury.vmm.domains
    starved = doms[node.guests[0].owner_id]
    starved.mem_pages = starved.mem_floor - 1
    picks = [node._pick_server() for _ in range(4)]
    assert all(p is node.guests[1] for p in picks)
    assert node.floor_skips == 4
    # the controller granting it back re-admits the domain
    starved.mem_pages = starved.mem_floor
    assert node.guests[0] in [node._pick_server() for _ in range(2)]


def test_picker_falls_back_to_bare_kernel(node):
    doms = node.mercury.vmm.domains
    for guest in node.guests:
        dom = doms[guest.owner_id]
        dom.mem_pages = dom.mem_floor - 1
    assert node._pick_server() is node.kernel
    assert node.floor_skips == 2


def test_fleet_serves_from_guests_and_is_worker_invariant():
    kwargs = dict(machines=4, seed=11, scenario="liveupdate",
                  requests=64, guest_domains=2)
    serial = run_fleet(workers=1, **kwargs)
    fanned = run_fleet(workers=2, **kwargs)
    assert fanned.canonical_output() == serial.canonical_output()

    summary = serial.summary()
    assert summary["completed"] == summary["requests"]
    # every request was served from a guest domain, never below floor
    assert summary["guest_served"] == summary["completed"]
    assert summary["floor_skips"] == 0
    for i, res in serial.fleet.node_results.items():
        if i == 0:
            continue
        # standing driver domains never detach (detach would refuse with
        # guests hosted); the live update patched under the standing VMM
        assert res["mode"] == "partial-virtual"
        assert res["updates_applied"] == 1
        # elasticity ran under load and respected every floor
        assert res["elastic"]["rounds"] > 0
        for pages in res["guest_mem_pages"].values():
            assert pages >= 16


def test_fleet_cluster_chaos_with_guests_recovers():
    """Chaos recovery on a guest-hosting machine: the microreboot rehosts
    the ballooned guests and the machine keeps serving."""
    result = run_fleet(machines=5, workers=1, seed=7, scenario="cluster",
                      requests=100, guest_domains=2, evacuations=1,
                      chaos_events=2, spares=1)
    summary = result.summary()
    assert summary["completed"] == summary["requests"]
    chaos = result.frontend["chaos_log"]
    assert chaos and all(entry[2] for entry in chaos)  # all detected
    recoveries = sum(r.get("chaos_recoveries", 0)
                     for i, r in result.fleet.node_results.items() if i)
    assert recoveries == len(chaos)
