"""Parallel-episode speedup bench: wall-clock vs. worker count.

Times the three episode-shaped benches — chaos campaign, crash matrix,
fault sweep — serially and fanned across ``min(4, cpu_count)`` worker
processes, asserts the fan-out changes no result, and records the
measured speedups in the ``sharding`` section of ``BENCH_perf.json``.

Gate policy, kept honest about physics:

- The ≥ 2.5× gate is enforced on the **chaos campaign**, the one bench
  whose serial wall-clock (seconds) dominates the ~0.5 s spawn cost of a
  process pool.  The gated campaign is sized (``GATE_EPISODES``) so the
  parallel region, not pool startup, dominates.
- The crash matrix and fault sweep run in tens of milliseconds serially —
  below pool-startup cost by an order of magnitude — so their speedups
  are *recorded* but cannot meaningfully gate; their rows say so.
- Everything is gated only on hosts with ≥ 4 cores (the CI perf-gates
  runner qualifies); a 1-core container records ``gated: false``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.bench.chaoscampaign import run_chaos_campaign
from repro.bench.crashmatrix import canonical_matrix_output, run_crash_matrix
from repro.bench.faultsweep import run_fault_sweep

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_perf.json"

#: campaign size for the gated timing run — large enough that the
#: parallel region dominates process-pool startup on CI hardware
GATE_EPISODES = 800
GATE_SEED = 1234
SWEEP_RATES = (0.0, 0.1, 0.25, 0.5)
SWEEP_ROUNDS = 24

#: acceptance gate: ≥ 2.5× at 4 workers, enforced where 4 cores exist
MIN_SPEEDUP = 2.5
GATE_MIN_CORES = 4


def _workers() -> int:
    return min(4, os.cpu_count() or 1)


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, round(time.perf_counter() - t0, 3)


def _gated() -> bool:
    return (os.cpu_count() or 1) >= GATE_MIN_CORES


def test_parallel_speedup_and_record():
    workers = _workers()
    gated = _gated()
    rows = {}

    chaos_serial, t_serial = _timed(
        lambda: run_chaos_campaign(episodes=GATE_EPISODES,
                                   seed=GATE_SEED))
    chaos_fanned, t_fanned = _timed(
        lambda: run_chaos_campaign(episodes=GATE_EPISODES,
                                   seed=GATE_SEED, workers=workers))
    assert chaos_fanned.canonical_output() == chaos_serial.canonical_output()
    chaos_speedup = round(t_serial / t_fanned, 2) if t_fanned else None
    rows["chaos_campaign"] = {
        "episodes": GATE_EPISODES, "serial_s": t_serial,
        "parallel_s": t_fanned, "speedup": chaos_speedup,
        "gate_applies": True}

    matrix_serial, t_serial = _timed(lambda: run_crash_matrix(workers=1))
    matrix_fanned, t_fanned = _timed(
        lambda: run_crash_matrix(workers=workers))
    assert (canonical_matrix_output(matrix_fanned)
            == canonical_matrix_output(matrix_serial))
    assert all(c.ok for c in matrix_serial if not c.skipped)
    rows["crash_matrix"] = {
        "cells": len(matrix_serial), "serial_s": t_serial,
        "parallel_s": t_fanned,
        "speedup": round(t_serial / t_fanned, 2) if t_fanned else None,
        "gate_applies": False,
        "note": "serial wall-clock is below process-pool startup cost; "
                "recorded for reference, equality still asserted"}

    sweep_serial, t_serial = _timed(
        lambda: run_fault_sweep(rates=SWEEP_RATES, rounds=SWEEP_ROUNDS))
    sweep_fanned, t_fanned = _timed(
        lambda: run_fault_sweep(rates=SWEEP_RATES, rounds=SWEEP_ROUNDS,
                                workers=workers))
    assert sweep_fanned == sweep_serial
    rows["fault_sweep"] = {
        "points": len(SWEEP_RATES), "serial_s": t_serial,
        "parallel_s": t_fanned,
        "speedup": round(t_serial / t_fanned, 2) if t_fanned else None,
        "gate_applies": False,
        "note": "serial wall-clock is below process-pool startup cost; "
                "recorded for reference, equality still asserted"}

    if gated:
        assert chaos_speedup is not None and chaos_speedup >= MIN_SPEEDUP, (
            f"chaos campaign parallel speedup {chaos_speedup}x below the "
            f"{MIN_SPEEDUP}x gate at {workers} workers")

    # read-modify-write: only the sharding section belongs to this bench
    perf = json.loads(RESULT_FILE.read_text()) if RESULT_FILE.exists() \
        else {}
    perf["sharding"] = {
        "host_cores": os.cpu_count(),
        "workers": workers,
        "gated": gated,
        "min_speedup_gate": MIN_SPEEDUP,
        "benches": rows,
    }
    RESULT_FILE.write_text(json.dumps(perf, indent=2) + "\n")
