"""§7.4's mechanism as a curve: attach time vs process population.

The paper explains the 0.22 ms attach as "Mercury has to recalculate the
type and count information for all page frames during a mode switch, which
accounts for the major time".  If that is the mechanism, attach time must
grow linearly in the number of page-table pages — this sweep measures the
curve and fits it.
"""

import pytest

from repro import Machine, Mercury

POPULATIONS = (1, 8, 16, 32, 64)


def _attach_at(bench_config, nprocs):
    machine = Machine(bench_config)
    mercury = Mercury(machine)
    kernel = mercury.create_kernel(image_pages=384)
    cpu = machine.boot_cpu
    for _ in range(nprocs - 1):
        kernel.syscall(cpu, "fork")
    rec_attach = mercury.attach()
    rec_detach = mercury.detach()
    return rec_attach, rec_detach


def test_switch_population_sweep(benchmark, bench_config):
    def run():
        return {n: _attach_at(bench_config, n) for n in POPULATIONS}

    recs = benchmark.pedantic(run, iterations=1, rounds=1)

    print()
    print("Section 7.4 mechanism: attach time vs process population")
    print()
    print(f"  {'procs':>6}{'PT pages':>10}{'attach (µs)':>13}"
          f"{'detach (µs)':>13}{'µs/PT page':>12}")
    print(f"  {'-'*54}")
    for n, (a, d) in recs.items():
        per_page = a.us() / a.pt_pages
        print(f"  {n:>6}{a.pt_pages:>10}{a.us():>13.2f}{d.us():>13.2f}"
              f"{per_page:>12.3f}")
        benchmark.extra_info[f"attach_us_{n}procs"] = round(a.us(), 2)

    # attach grows monotonically with the page-table population...
    attach_us = [recs[n][0].us() for n in POPULATIONS]
    assert attach_us == sorted(attach_us)
    # ...and linearly: the per-PT-page marginal cost is stable across the
    # sweep (the recompute is the dominant, linear term)
    marginal = [(recs[n][0].us() - recs[1][0].us())
                / max(1, recs[n][0].pt_pages - recs[1][0].pt_pages)
                for n in POPULATIONS[1:]]
    assert max(marginal) < 2.5 * min(marginal), \
        f"attach cost is not linear in PT pages: {marginal}"
    # detach stays comparatively flat (no recompute on the way out)
    detach_us = [recs[n][1].us() for n in POPULATIONS]
    assert detach_us[-1] < attach_us[-1] / 2
