"""Chaos-campaign bench: MTTR distribution and recovery success rate.

The deterministic (seeded) dependability headline for ROADMAP item 4: a
200-episode campaign of in-attached-mode VMM faults — random site, victim
variant, trigger cycle, workload, and topology per episode — each of which
must be detected by the VMI watchdog and survived by a ReHype-style
microreboot with the guest still answering syscalls.  Results (MTTR
p50/p99, success and detection rates, per-site breakdown, watchdog
steady-state overhead) land in ``BENCH_recovery.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.chaoscampaign import (CAMPAIGN_SITES,
                                       measure_watchdog_overhead,
                                       run_chaos_campaign)

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_recovery.json"

EPISODES = 200
SEED = 1234

#: acceptance gates (ISSUE: ≥ 99% recovery success, ≤ 2% scan overhead)
MIN_SUCCESS_RATE = 0.99
MAX_OVERHEAD_PCT = 2.0


def test_chaos_campaign_and_record():
    result = run_chaos_campaign(episodes=EPISODES, seed=SEED)

    assert len(result.results) == EPISODES
    # every episode injected its fault (the campaign only draws live sites)
    assert all(e.injected for e in result.results)

    # the headline gates
    assert result.success_rate >= MIN_SUCCESS_RATE, (
        f"recovery success {result.success_rate:.4f} below the "
        f"{MIN_SUCCESS_RATE:.0%} gate: "
        f"{[e.row() for e in result.results if not e.success][:3]}")
    assert result.detection_rate >= MIN_SUCCESS_RATE

    # MTTR is measured, bounded, and spread enough that p50/p99 both mean
    # something (sub-ms to a few ms at 3 GHz — paper-scale microreboots)
    p50, p99 = result.mttr_percentile(50), result.mttr_percentile(99)
    assert p50 is not None and p99 is not None
    assert 0 < p50 <= p99
    assert p99 / result.freq_mhz < 50_000, "MTTR p99 above 50 ms"

    # coverage: the seeded draw reached every registered site
    per_site = result.per_site()
    assert set(per_site) == set(CAMPAIGN_SITES)
    for site, row in per_site.items():
        assert row["successes"] == row["episodes"], site

    # nothing degraded silently: recovered episodes end invariant-clean
    # with the guest alive
    for e in result.results:
        assert e.invariant_failures == 0
        assert e.guest_alive

    overhead = measure_watchdog_overhead()
    assert overhead["overhead_pct"] <= MAX_OVERHEAD_PCT, (
        f"watchdog steady-state overhead {overhead['overhead_pct']:.3f}% "
        f"above the {MAX_OVERHEAD_PCT}% gate")

    RESULT_FILE.write_text(json.dumps({
        "campaign": result.summary(),
        "watchdog_overhead": overhead,
        "gates": {"min_success_rate": MIN_SUCCESS_RATE,
                  "max_overhead_pct": MAX_OVERHEAD_PCT},
    }, indent=2) + "\n")


def test_campaign_is_deterministic():
    """Two same-seed campaigns are byte-identical — the property the CI
    chaos-recovery job re-checks through the CLI."""
    a = run_chaos_campaign(episodes=6, seed=SEED)
    b = run_chaos_campaign(episodes=6, seed=SEED)
    assert a.canonical_output() == b.canonical_output()
