"""Figure 3: relative application performance, uniprocessor mode.

Regenerates the Fig. 3 series (OSDB-IR, dbench, Linux build, ping, iperf)
for all six configurations, normalized to native Linux, and asserts the
paper's qualitative findings:

- OSDB-IR loses >20% under virtualization (both dom0 and domU);
- dbench: dom0 ~15% slower, but domU *faster* than native (the split
  block model's write caching — the paper's one inversion);
- kernel build loses ~9%;
- ping/iperf lose >20%/(~40%) in dom0 and 60%/70% in domU;
- Mercury's three modes track their counterparts within ~2%.
"""

import pytest

from conftest import attach_rows
from repro.bench.report import format_relative_figure
from repro.bench.runner import relative_to_native, run_app_suite


@pytest.fixture(scope="module")
def relative(bench_config):
    return relative_to_native(run_app_suite(num_cpus=1, config=bench_config))


def test_fig3_overall_up(benchmark, bench_config):
    table = benchmark.pedantic(
        lambda: run_app_suite(num_cpus=1, config=bench_config),
        iterations=1, rounds=1)
    rel = relative_to_native(table)
    print()
    print(format_relative_figure(
        rel, "Fig. 3. Relative performance of Mercury against Linux and "
             "Xen-Linux in uniprocessor mode"))
    attach_rows(benchmark, rel)

    # --- Mercury modes track their counterparts (<2%) ------------------
    for row in rel:
        assert rel[row]["M-N"] == pytest.approx(1.0, abs=0.02)
        assert rel[row]["M-V"] == pytest.approx(rel[row]["X-0"], rel=0.02)
        assert rel[row]["M-U"] == pytest.approx(rel[row]["X-U"], rel=0.02)

    # --- per-benchmark shapes -------------------------------------------
    assert rel["OSDB-IR"]["X-0"] < 0.85            # >20% loss (paper: ~0.78)
    assert rel["OSDB-IR"]["X-U"] < 0.85

    assert 0.70 < rel["dbench"]["X-0"] < 0.95      # dom0 slower (paper 0.85)
    assert rel["dbench"]["X-U"] > 1.0              # the inversion (paper ~1.05)

    assert 0.85 < rel["Linux build"]["X-0"] < 0.98  # ~9% loss
    assert 0.85 < rel["Linux build"]["X-U"] < 1.02

    assert rel["ping"]["X-0"] < 0.85               # >20% latency loss
    assert rel["ping"]["X-U"] < rel["ping"]["X-0"]  # domU worse than dom0

    assert rel["iperf-tcp"]["X-0"] < 0.70          # ~40%+ loss
    assert rel["iperf-tcp"]["X-U"] < 0.45          # ~70% loss
    assert rel["iperf-udp"]["X-U"] < rel["iperf-udp"]["X-0"]
