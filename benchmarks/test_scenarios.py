"""Scenario benches (§6): the dependability numbers self-virtualization
buys — checkpoint cost, migration downtime, maintenance disruption,
live-update window, healing MTTR, and the cluster policy comparison.

The paper presents these scenarios qualitatively; this bench quantifies
them on the simulated testbed so regressions in any scenario path surface
as numbers.
"""

import pytest

from repro import Machine, Mercury
from repro.core.mercury import Mode
from repro.params import PAGE_SIZE
from repro.scenarios.checkpoint import checkpoint, restore
from repro.scenarios.cluster import HpcCluster
from repro.scenarios.healing import SelfHealer
from repro.scenarios.liveupdate import KernelPatch, LiveUpdater
from repro.scenarios.maintenance import MaintenanceWindow
from repro.scenarios.migration import LiveMigration


def _loaded_mercury(bench_config, name="node"):
    machine = Machine(bench_config)
    mercury = Mercury(machine)
    k = mercury.create_kernel(name=f"{name}-linux", image_pages=128)
    cpu = machine.boot_cpu
    fd = k.syscall(cpu, "open", "/app/data", True)
    k.syscall(cpu, "write", fd, "app-state", 16 * 4096)
    k.syscall(cpu, "fsync", fd)
    for _ in range(6):
        k.syscall(cpu, "fork")
    return mercury


def test_scenario_checkpoint_restart(benchmark, bench_config):
    mercury = _loaded_mercury(bench_config)
    clock = mercury.machine.clock

    def run():
        t0 = clock.cycles
        image = checkpoint(mercury)
        ckpt_ms = (clock.cycles - t0) / 3_000_000
        t0 = clock.cycles
        restore(image, mercury)
        restore_ms = (clock.cycles - t0) / 3_000_000
        return image, ckpt_ms, restore_ms

    image, ckpt_ms, restore_ms = benchmark.pedantic(run, iterations=1,
                                                    rounds=1)
    print()
    print("Scenario 6.1: checkpoint/restart of operating systems")
    print(f"  image size      : {image.num_frames} frames "
          f"({image.num_frames * 4} KB)")
    print(f"  checkpoint time : {ckpt_ms:8.3f} ms (incl. attach+detach)")
    print(f"  restore time    : {restore_ms:8.3f} ms")
    assert mercury.mode is Mode.NATIVE  # no standing VMM afterwards
    assert ckpt_ms < 100 and restore_ms < 100
    benchmark.extra_info["checkpoint_ms"] = round(ckpt_ms, 3)
    benchmark.extra_info["restore_ms"] = round(restore_ms, 3)


def test_scenario_live_migration(benchmark, bench_config):
    src = _loaded_mercury(bench_config, "src")
    dst_machine = Machine(bench_config, clock=src.machine.clock)
    dst = Mercury(dst_machine)
    dst.create_kernel(name="dst-linux", image_pages=64)
    src.machine.link_to(dst_machine)
    dst.attach()
    src.full_virtualize()

    k = src.kernel
    cpu = src.machine.boot_cpu
    task = k.scheduler.current
    base = k.syscall(cpu, "mmap", 8 * PAGE_SIZE, True)
    frames = [k.vmem.access(cpu, task, base + i * PAGE_SIZE, write=True)
              for i in range(8)]

    def mutator(round_no):  # the workload keeps dirtying memory
        for f in frames[:4]:
            src.machine.memory.write(f, f"round-{round_no}")

    def run():
        return LiveMigration(src, dst, max_rounds=4,
                             dirty_threshold=2).run(mutator=mutator)

    restored, report = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Scenario 6.3/6.5 primitive: live migration (pre-copy)")
    print(f"  rounds          : {len(report.rounds)}"
          f"  ({[r.pages_sent for r in report.rounds]} pages)")
    print(f"  stop-and-copy   : {report.stop_and_copy_pages} pages")
    print(f"  total time      : {report.total_ms():8.3f} ms")
    print(f"  downtime        : {report.downtime_ms():8.3f} ms")
    assert report.downtime_cycles < report.total_cycles
    assert len(report.rounds) >= 2  # the mutator forced convergence work
    benchmark.extra_info["downtime_ms"] = round(report.downtime_ms(), 3)
    benchmark.extra_info["total_ms"] = round(report.total_ms(), 3)


def test_scenario_online_maintenance(benchmark, bench_config):
    primary = _loaded_mercury(bench_config, "primary")
    standby_machine = Machine(bench_config, clock=primary.machine.clock)
    standby = Mercury(standby_machine)
    standby.create_kernel(name="standby-linux", image_pages=64)
    primary.machine.link_to(standby_machine)

    maintenance_s = 2.0

    def run():
        window = MaintenanceWindow(primary, standby)
        return window.perform(
            lambda: primary.machine.clock.advance(int(maintenance_s * 3e9)))

    report = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Scenario 6.3: online hardware maintenance")
    print(f"  maintenance window : {report.maintenance_cycles/3e9:8.2f} s")
    print(f"  app disruption     : {report.disruption_ms():8.3f} ms")
    print(f"  availability ratio : "
          f"{1 - report.disruption_cycles/report.total_cycles:.6f}")
    assert primary.mode is Mode.NATIVE
    assert report.disruption_cycles * 50 < report.maintenance_cycles
    benchmark.extra_info["disruption_ms"] = round(report.disruption_ms(), 3)


def test_scenario_live_update(benchmark, bench_config):
    mercury = _loaded_mercury(bench_config)
    updater = LiveUpdater(mercury)
    clock = mercury.machine.clock

    def run():
        t0 = clock.cycles
        rec = updater.apply(KernelPatch(
            "cve-fix", "getpid", lambda k, c, t: t.pid,
            validator=lambda k: True))
        return rec, (clock.cycles - t0) / 3_000_000

    rec, window_ms = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Scenario 6.4: live kernel update (LUCOS without a standing VMM)")
    print(f"  update window  : {window_ms:8.3f} ms "
          f"(attach {rec.attach_us:.1f} µs + patch + detach "
          f"{rec.detach_us:.1f} µs)")
    assert mercury.mode is Mode.NATIVE
    assert window_ms < 10
    benchmark.extra_info["update_window_ms"] = round(window_ms, 3)


def test_scenario_self_healing(benchmark, bench_config):
    mercury = _loaded_mercury(bench_config)
    k = mercury.kernel
    clock = mercury.machine.clock

    def run():
        t = k.scheduler.current
        k.scheduler.runqueue.extend([t, t])    # inject the anomaly
        t0 = clock.cycles
        records = SelfHealer(mercury).scan()
        return records, (clock.cycles - t0) / 3_000_000

    records, mttr_ms = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Scenario 6.2: self-healing through the transient VMM")
    print(f"  anomalies healed : {len(records)}")
    print(f"  MTTR             : {mttr_ms:8.3f} ms (incl. attach+detach)")
    assert all(r.healed for r in records)
    assert mercury.mode is Mode.NATIVE
    benchmark.extra_info["mttr_ms"] = round(mttr_ms, 3)


def test_scenario_periodic_checkpointing(benchmark, bench_config):
    """§6.1 deployed: periodic checkpoints bound the work at risk to one
    period; the steady-state cost is the per-checkpoint attach+snapshot+
    detach window."""
    from repro.scenarios.schedule import CheckpointSchedule

    mercury = _loaded_mercury(bench_config, "periodic")
    clock = mercury.machine.clock
    period_ms = 50.0

    def run():
        sched = CheckpointSchedule(mercury, period_ms=period_ms, keep=3)
        sched.start()
        costs = []
        for _ in range(4):
            t0 = clock.cycles
            clock.advance(int(period_ms * 1.02 * 1000 * 3000))
            clock.run_due()
            costs.append((clock.cycles - t0) / 3_000 - period_ms * 1.02 * 1000)
        sched.stop()
        return sched, costs

    sched, costs = benchmark.pedantic(run, iterations=1, rounds=1)
    per_ckpt_ms = (sum(costs) / len(costs)) / 1000
    at_risk_ms = sched.work_at_risk_cycles() / 3_000_000
    print()
    print("Scenario 6.1 (periodic): checkpoint schedule")
    print(f"  period             : {period_ms:8.1f} ms")
    print(f"  cost per checkpoint: {per_ckpt_ms:8.3f} ms "
          f"({per_ckpt_ms / period_ms * 100:.2f}% steady-state overhead)")
    print(f"  work at risk       : {at_risk_ms:8.2f} ms (<= one period)")
    assert len(sched.images) == 3          # retention bound
    assert per_ckpt_ms < period_ms * 0.25  # checkpointing is not the job
    assert at_risk_ms <= period_ms * 1.3
    benchmark.extra_info["ckpt_overhead_pct"] = round(
        per_ckpt_ms / period_ms * 100, 2)


def test_scenario_rolling_cluster_maintenance(benchmark):
    """§6.3 fleet-wide: every node serviced, one at a time, nodes back at
    full native speed afterwards."""
    from repro.core.mercury import Mode
    from repro.scenarios.cluster import HpcCluster

    def run():
        cluster = HpcCluster(num_nodes=3)
        cluster.nodes[0].job_progress = 0
        order = cluster.rolling_maintenance(
            lambda node: node.machine.clock.advance(1_500_000_000))
        return cluster, order

    cluster, order = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Scenario 6.3 (fleet): rolling maintenance")
    print(f"  order      : {order}")
    print(f"  evacuations: every node hosted elsewhere during its window")
    assert order == [n.name for n in cluster.nodes]
    for node in cluster.nodes:
        assert node.mercury.mode is Mode.NATIVE
    benchmark.extra_info["nodes_serviced"] = len(order)


def test_scenario_hpc_cluster_policies(benchmark):
    def run():
        out = {}
        for policy in ("self-virtualization", "checkpoint", "restart"):
            cluster = HpcCluster(num_nodes=2)
            out[policy] = cluster.run_with_policy(
                policy, total_steps=40, fail_at_step=25, checkpoint_every=10)
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Scenario 6.5: HPC availability policies under a predicted failure")
    print()
    print(f"  {'policy':<22}{'lost steps':>12}{'downtime (ms)':>16}")
    print(f"  {'-'*50}")
    for policy, rep in out.items():
        print(f"  {policy:<22}{rep.job_steps_lost:>12}"
              f"{rep.downtime_ms():>16.3f}")
        benchmark.extra_info[f"{policy}_lost"] = rep.job_steps_lost
    assert out["self-virtualization"].job_steps_lost == 0
    assert out["self-virtualization"].downtime_cycles < \
        out["checkpoint"].downtime_cycles or \
        out["checkpoint"].job_steps_lost > 0
    assert out["restart"].job_steps_lost == 25
