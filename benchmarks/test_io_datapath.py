"""Notification-coalescing smoke for the batched split-driver datapath.

Gates, in CI and locally:

- **Hard acceptance** (machine-independent, deterministic): the X-U iperf
  sender amortizes event-channel doorbells over ring batches — at most
  0.25 notifies per transmitted segment (the seed datapath rang once per
  packet).  dbench's background writeback likewise pays per batch, never
  per block.
- **Regression gates** (vs the committed ``BENCH_perf.json`` ``io``
  section): >10% loss on the notify-suppression ratio, the simulated
  transfer time, or the throughput of either workload fails the run.
  The simulator is deterministic, so these gates are exact re-runs of
  the committed numbers — 10% is headroom for intentional cost-model
  tuning, not for noise.  Host wall time gets only a generous 3x bound
  (CI runners vary); the *simulated* elapsed time is the strict one.

The measured section is rewritten on every run so the improvement stays
auditable next to the seed baseline.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.bench.configs import build_config
from repro.workloads.dbench import run_dbench
from repro.workloads.iperf import run_iperf

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_perf.json"

#: measured on the pre-batching seed (per-request datapath)
SEED_IPERF_XU_MBIT_S = 282.6
SEED_IPERF_XU_NOTIFIES_PER_PACKET = 1.0
SEED_DBENCH_XU_MB_S = 2080.97

#: generous host-wall bound; the strict gates are all simulated-time
WALL_S_CEILING = 3.0


def _committed_io() -> dict | None:
    try:
        return json.loads(RESULT_FILE.read_text()).get("io")
    except (OSError, ValueError):
        return None


def test_io_datapath_notify_coalescing_and_record():
    committed = _committed_io()  # read before this run overwrites it

    t0 = time.perf_counter()
    net_stack = build_config("X-U")
    tcp = run_iperf(net_stack.kernel, net_stack.peer_kernel, proto="tcp",
                    total_bytes=2 * 1024 * 1024)
    blk_stack = build_config("X-U")
    db = run_dbench(blk_stack.kernel, blk_stack.cpu)
    wall_s = time.perf_counter() - t0

    # -- hard acceptance: doorbells amortize over batches ----------------
    assert tcp.packets_sent > 1000  # the run is big enough to mean something
    assert tcp.notifies_per_packet <= 0.25, (
        f"{tcp.notifies_per_packet:.3f} notifies/packet — the TX datapath "
        "is ringing the doorbell per packet again")
    tcp_events = tcp.notifies_sent + tcp.notifies_suppressed
    tcp_suppression = tcp.notifies_suppressed / tcp_events if tcp_events else 0.0
    assert tcp.notifies_suppressed > 0, "no sends were ever coalesced"
    assert tcp.mbit_s > SEED_IPERF_XU_MBIT_S, (
        f"X-U iperf {tcp.mbit_s:.1f} Mbit/s is no better than the "
        f"per-request seed ({SEED_IPERF_XU_MBIT_S})")
    # dbench's writeback: one submit + one completion doorbell per flushed
    # batch — strictly fewer doorbells than blocks on the per-block path
    db_blocks = blk_stack.vmm.io_stats.ring_batched_entries
    assert db.notifies_sent < db_blocks or db.notifies_sent == 0

    # -- >10% regression gates vs the committed baseline -----------------
    if committed is not None:
        cur = committed["current"]
        assert tcp.mbit_s >= 0.9 * cur["iperf_xu_mbit_s"]
        assert tcp.elapsed_us <= 1.1 * cur["iperf_xu_elapsed_us"]
        assert (tcp.notifies_per_packet
                <= 1.1 * cur["iperf_xu_notifies_per_packet"] + 1e-9)
        assert tcp_suppression >= 0.9 * cur["iperf_xu_suppression_ratio"]
        assert db.throughput_mb_s >= 0.9 * cur["dbench_xu_mb_s"]

    # -- record the io section next to the wallclock numbers -------------
    try:
        result = json.loads(RESULT_FILE.read_text())
    except (OSError, ValueError):
        result = {}
    result["io"] = {
        "workload": "iperf tcp 2 MiB, X-U sender -> native receiver; "
                    "dbench 4 clients on X-U",
        "seed_baseline": {
            "iperf_xu_mbit_s": SEED_IPERF_XU_MBIT_S,
            "iperf_xu_notifies_per_packet": SEED_IPERF_XU_NOTIFIES_PER_PACKET,
            "dbench_xu_mb_s": SEED_DBENCH_XU_MB_S,
        },
        "current": {
            "iperf_xu_mbit_s": round(tcp.mbit_s, 1),
            "iperf_xu_elapsed_us": round(tcp.elapsed_us, 1),
            "iperf_xu_notifies_per_packet": round(tcp.notifies_per_packet, 4),
            "iperf_xu_suppression_ratio": round(tcp_suppression, 4),
            "dbench_xu_mb_s": round(db.throughput_mb_s, 2),
            "io_smoke_wall_s": round(wall_s, 3),
        },
        "iperf_improvement_pct": round(
            100.0 * (tcp.mbit_s / SEED_IPERF_XU_MBIT_S - 1.0), 1),
    }
    RESULT_FILE.write_text(json.dumps(result, indent=2) + "\n")

    assert wall_s < WALL_S_CEILING, (
        f"io smoke took {wall_s:.2f}s of host time — something is "
        "pathologically slow")
