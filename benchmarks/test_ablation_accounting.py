"""Ablation A1 (§5.1.2): ACTIVE page accounting vs RECOMPUTE.

"We have implemented both approaches for the memory management of Xen.
According to our performance experiment, the first approach will incur
about 2%~3% performance overhead and saves only a small amount of mode
switch time.  Hence, we preferably choose the latter approach."

This bench quantifies both sides of the trade-off on a page-table-heavy
workload (a fork/exec/mmap churn) and checks the paper's conclusion holds:
modest runtime tax for ACTIVE, faster attach, same correctness.
"""

import pytest

from repro import Machine, Mercury
from repro.core.accounting import AccountingStrategy
from repro.params import PAGE_SIZE


def _pt_heavy_workload(mercury, iterations=6):
    """fork + exec + mmap churn: the operations ACTIVE shadows."""
    k = mercury.kernel
    cpu = mercury.machine.boot_cpu
    t0 = cpu.rdtsc()
    for _ in range(iterations):
        child = k.spawn_process(cpu, "churn", image_pages=128)
        k.run_and_reap(cpu, child)
        base = k.syscall(cpu, "mmap", 16 * PAGE_SIZE, True)
        k.syscall(cpu, "munmap", base, 16 * PAGE_SIZE)
    return cpu.rdtsc() - t0


def _build(bench_config, strategy):
    machine = Machine(bench_config)
    mercury = Mercury(machine, strategy=strategy)
    mercury.create_kernel(image_pages=256)
    cpu = machine.boot_cpu
    for _ in range(20):
        mercury.kernel.syscall(cpu, "fork")
    return mercury


def test_ablation_accounting_tradeoff(benchmark, bench_config):
    def run():
        out = {}
        for strategy in (AccountingStrategy.RECOMPUTE,
                         AccountingStrategy.ACTIVE):
            mercury = _build(bench_config, strategy)
            runtime = _pt_heavy_workload(mercury)
            attach = mercury.attach()
            mercury.detach()
            out[strategy.value] = {"runtime_cycles": runtime,
                                   "attach_us": attach.us()}
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    rec, act = out["recompute"], out["active"]
    overhead = (act["runtime_cycles"] - rec["runtime_cycles"]) \
        / rec["runtime_cycles"]
    saving = (rec["attach_us"] - act["attach_us"]) / rec["attach_us"]

    print()
    print("Ablation A1: page type/count maintenance strategy (Section 5.1.2)")
    print()
    print(f"  {'strategy':<12}{'workload (Mcycles)':>20}{'attach (µs)':>14}")
    print(f"  {'-'*46}")
    for name, d in out.items():
        print(f"  {name:<12}{d['runtime_cycles']/1e6:>20.2f}"
              f"{d['attach_us']:>14.2f}")
    print()
    print(f"  ACTIVE runtime overhead: {overhead*100:5.2f}%  (paper: 2-3%)")
    print(f"  ACTIVE attach saving   : {saving*100:5.1f}%  (paper: 'small')")

    # the paper's trade-off, quantitatively
    assert 0.0 < overhead < 0.08, f"ACTIVE overhead {overhead:.2%} off-band"
    assert act["attach_us"] < rec["attach_us"], "ACTIVE must shorten attach"

    benchmark.extra_info["active_overhead_pct"] = round(overhead * 100, 2)
    benchmark.extra_info["attach_saving_pct"] = round(saving * 100, 1)


def test_ablation_both_strategies_equally_correct(bench_config):
    """Whatever the strategy, the attached VMM must validate identically:
    run the same virtual-mode workload after attach under both."""
    for strategy in (AccountingStrategy.RECOMPUTE, AccountingStrategy.ACTIVE):
        mercury = _build(bench_config, strategy)
        mercury.attach()
        k = mercury.kernel
        cpu = mercury.machine.boot_cpu
        child = k.spawn_process(cpu, "post-attach", image_pages=64)
        k.run_and_reap(cpu, child)
        mercury.detach()
