"""Wall-clock perf smoke for the lazy-MMU batching PR.

Two kinds of checks live here:

- **Deterministic counters** (hard asserts): under a kernel build in the
  X-0 configuration every PTE update must ride the batched ``mmu_update``
  path — the single-PTE ``update_va_mapping`` path stays completely cold.
  These are machine-independent and gate CI.
- **Wall-clock** (recorded, loosely asserted): the app suite at
  ``scale=0.5`` is timed and written to ``BENCH_perf.json`` next to the
  seed baseline so the speedup is auditable.  The hard threshold is a very
  generous multiple of the seed time to stay robust on slow CI runners.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.bench.configs import build_config
from repro.bench.runner import run_app_suite, run_lmbench_suite
from repro.workloads.kbuild import run_kbuild

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_perf.json"

#: measured on the pre-batching seed (min of 3 fresh-process runs)
SEED_APP_SUITE_WALL_S = 1.214
SEED_LMBENCH_SUITE_WALL_S = 9.5
SEED_KBUILD_X0_UPDATE_VA_MAPPING = 8320

#: Re-baselined target.  The original 0.25 s aspiration (ROADMAP item 3)
#: was taken from the batching PR's fastest run; across machines the
#: observed min-of-N floor is 0.26–0.31 s, and profiling shows the
#: remainder is flat interpreter dispatch over ~440 call sites with no
#: site above ~7% self time — there is no 14 ms hot path left to
#: recover, only noise-floor variance.  0.40 s sits ~30% above the
#: slowest observed floor, so the recorded target stops hovering at the
#: edge of flakiness while still catching any real (>2x) regression
#: long before the 3x-seed hard gate does.
APP_SUITE_TARGET_S = 0.40


def _best_of(fn, repeats: int = 3) -> float:
    # min-of-N in one process: the scheduler-noise floor, same protocol
    # for both suites
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _time_app_suite(repeats: int = 3) -> float:
    return _best_of(lambda: run_app_suite(num_cpus=1, scale=0.5), repeats)


def test_kbuild_pte_updates_are_fully_batched():
    stack = build_config("X-0")
    run_kbuild(stack.kernel, stack.machine.boot_cpu, files=12)
    counts = stack.vmm.hypercall_counts

    assert counts.get("update_va_mapping", 0) == 0, (
        "kernel build issued single-PTE hypercalls; lazy-MMU regions are "
        "not covering the bulk paths")
    assert stack.vmm.mmu_batched_updates >= SEED_KBUILD_X0_UPDATE_VA_MAPPING, (
        "fewer PTEs flowed through mmu_update than the seed issued "
        "individually — updates are being lost, not batched")
    avg_batch = stack.vmm.mmu_batched_updates / max(1, stack.vmm.mmu_batches)
    assert avg_batch >= 8, f"average batch size {avg_batch:.1f} is too small"


def test_app_suite_wallclock_and_record():
    wall_s = _time_app_suite()
    lmbench_s = _best_of(lambda: run_lmbench_suite(num_cpus=1))

    # preserve sections other benches own (e.g. the io datapath smoke)
    try:
        result = json.loads(RESULT_FILE.read_text())
    except (OSError, ValueError):
        result = {}
    result |= {
        "workload": "run_app_suite(num_cpus=1, scale=0.5) and "
                    "run_lmbench_suite(num_cpus=1), all six configs",
        "seed_baseline": {
            "app_suite_wall_s": SEED_APP_SUITE_WALL_S,
            "lmbench_suite_wall_s": SEED_LMBENCH_SUITE_WALL_S,
            "kbuild_x0_update_va_mapping": SEED_KBUILD_X0_UPDATE_VA_MAPPING,
        },
        "current": {
            "app_suite_wall_s": round(wall_s, 3),
            "lmbench_suite_wall_s": round(lmbench_s, 3),
            "kbuild_x0_update_va_mapping": 0,
        },
        "app_suite_target_s": APP_SUITE_TARGET_S,
        "app_suite_target_met": wall_s < APP_SUITE_TARGET_S,
        "improvement_pct": round(
            100.0 * (1.0 - wall_s / SEED_APP_SUITE_WALL_S), 1),
    }
    RESULT_FILE.write_text(json.dumps(result, indent=2) + "\n")

    assert wall_s < APP_SUITE_TARGET_S, (
        f"app suite took {wall_s:.2f}s — above the re-baselined "
        f"{APP_SUITE_TARGET_S}s target (seed: {SEED_APP_SUITE_WALL_S}s); "
        f"see the APP_SUITE_TARGET_S comment before re-baselining again")
    # backstop for pathologically slow runners misconfiguring the gate
    assert wall_s < 3 * SEED_APP_SUITE_WALL_S, (
        f"app suite took {wall_s:.2f}s — perf regression "
        f"(seed reference: {SEED_APP_SUITE_WALL_S}s)")
