"""Shared benchmark configuration.

Benchmarks run the simulator at a reduced-but-faithful machine scale
(256 MiB instead of the paper's 900 000 KB) so each table regenerates in
seconds; the cost model is identical, and per-operation latencies are
independent of installed memory.  Results print as paper-style tables and
are attached to pytest-benchmark's ``extra_info``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.hw.machine import reset_machine_ids
from repro.params import MachineConfig

#: the machine configuration every benchmark builds
BENCH_MEM_KB = 262_144


def pytest_runtest_setup(item):
    # deterministic machine names/NIC addresses per benchmark
    reset_machine_ids()


@pytest.fixture(scope="session")
def bench_config():
    return dataclasses.replace(MachineConfig(), mem_kb=BENCH_MEM_KB)


def attach_rows(benchmark, table: dict[str, dict[str, float]]) -> None:
    """Record a row->config->value table on the benchmark for the JSON
    output."""
    for row, per_config in table.items():
        for key, value in per_config.items():
            benchmark.extra_info[f"{row}/{key}"] = round(float(value), 4)
