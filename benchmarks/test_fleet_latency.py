"""Fleet-scale tail-latency bench: the §6.4 rolling live update as a
100-machine fleet operation under open-loop traffic.

Records a ``fleet`` section in ``BENCH_perf.json`` with the p50/p99
request latency during the rolling wave vs. steady state, and gates the
paper's headline fleet claim: with switch-aware draining in front of a
0.2 ms mode switch, rolling a live kernel update across the whole fleet
degrades p99 tail latency by at most 5x (in practice it barely moves).

Also re-checks the determinism contract at benchmark scale: the 4-worker
run's canonical output is byte-identical to the serial run.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.fleet import degradation_ratio, run_fleet

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_perf.json"

MACHINES = 100
SEED = 2007  # ICPP'07

#: the gate: wave-phase p99 must stay within 5x of steady-state p99
MAX_P99_DEGRADATION = 5.0


def test_rolling_update_tail_latency_and_worker_invariance():
    t0 = time.perf_counter()
    serial = run_fleet(machines=MACHINES, workers=1, seed=SEED,
                       scenario="liveupdate")
    serial_wall = time.perf_counter() - t0

    summary = serial.summary()
    pct = summary["percentiles"]
    assert summary["completed"] == summary["requests"]
    assert summary["forced_dispatches"] == 0
    for phase in ("steady", "wave", "after"):
        assert pct[phase]["count"] > 0, (
            f"no requests completed in the {phase} phase; the bench is "
            f"not measuring what it claims")

    ratio = degradation_ratio(pct)
    assert ratio is not None
    assert ratio <= MAX_P99_DEGRADATION, (
        f"rolling the update degraded p99 by {ratio:.2f}x "
        f"(steady {pct['steady']['p99_us']}us -> wave "
        f"{pct['wave']['p99_us']}us); the switch-aware drain is not "
        f"holding the tail")

    # worker invariance at bench scale: 4 shards, byte-identical
    t0 = time.perf_counter()
    fanned = run_fleet(machines=MACHINES, workers=4, seed=SEED,
                       scenario="liveupdate")
    fanned_wall = time.perf_counter() - t0
    assert fanned.canonical_output() == serial.canonical_output()

    try:
        result = json.loads(RESULT_FILE.read_text())
    except (OSError, ValueError):
        result = {}
    result["fleet"] = {
        "workload": f"run_fleet(machines={MACHINES}, scenario='liveupdate',"
                    f" seed={SEED}): open-loop poisson traffic through a "
                    f"switch-aware balancer while every machine drains, "
                    f"live-patches its kernel under a transient VMM, and "
                    f"rejoins",
        "machines": MACHINES,
        "requests": summary["requests"],
        "steady": {"p50_us": pct["steady"]["p50_us"],
                   "p99_us": pct["steady"]["p99_us"],
                   "count": pct["steady"]["count"]},
        "wave": {"p50_us": pct["wave"]["p50_us"],
                 "p99_us": pct["wave"]["p99_us"],
                 "count": pct["wave"]["count"]},
        "after": {"p50_us": pct["after"]["p50_us"],
                  "p99_us": pct["after"]["p99_us"],
                  "count": pct["after"]["count"]},
        "p99_degradation": round(ratio, 3),
        "p99_degradation_gate": MAX_P99_DEGRADATION,
        "workers4_byte_identical": True,
        "wall_s": {"workers1": round(serial_wall, 3),
                   "workers4": round(fanned_wall, 3)},
    }
    RESULT_FILE.write_text(json.dumps(result, indent=2) + "\n")
