"""Section 7.4: mode switch time.

"The average time is about 0.22 ms to do a switch from native mode to
virtual mode, and 0.06 ms to a switch back. ... Mercury has to recalculate
the type and count information for all page frames during a mode switch,
which accounts for the major time to commit a switch."

The measurement protocol mirrors the paper: RDTSC at the beginning and end
of each switch, averaged over repeated switches, on a machine with a
realistic process population.
"""

import pytest

from repro import Machine, Mercury
from repro.core.accounting import AccountingStrategy
from repro.core.switch import Direction

#: an idle-2006-Linux-like process population
PROCESSES = 42
SWITCHES = 5


def _populated_mercury(bench_config, num_cpus=1,
                       strategy=AccountingStrategy.RECOMPUTE,
                       incremental_attach=False):
    # the paper's protocol recalculates the full table on every attach, so
    # the fidelity measurements run with the incremental recompute off
    machine = Machine(bench_config.with_cpus(num_cpus))
    mercury = Mercury(machine, strategy=strategy,
                      incremental_attach=incremental_attach)
    kernel = mercury.create_kernel(image_pages=384)
    cpu = machine.boot_cpu
    for _ in range(PROCESSES - 1):
        kernel.syscall(cpu, "fork")
    return mercury


def _measure(mercury, switches=SWITCHES):
    for _ in range(switches):
        mercury.attach()
        mercury.detach()
    return (mercury.mean_switch_us(Direction.TO_VIRTUAL),
            mercury.mean_switch_us(Direction.TO_NATIVE))


def test_sec74_mode_switch_time(benchmark, bench_config):
    mercury = _populated_mercury(bench_config)
    to_virtual, to_native = benchmark.pedantic(
        lambda: _measure(mercury), iterations=1, rounds=1)

    from repro.bench.report import format_switch_times
    print()
    print(format_switch_times(to_virtual, to_native))

    # paper: ~0.22 ms and ~0.06 ms; both sub-millisecond, attach dominated
    # by the page-info recompute
    assert 0.08 < to_virtual / 1000.0 < 0.50, \
        f"native->virtual {to_virtual/1000:.3f} ms out of band"
    assert 0.02 < to_native / 1000.0 < 0.15, \
        f"virtual->native {to_native/1000:.3f} ms out of band"
    assert to_virtual > 2.0 * to_native, \
        "attach must cost several times detach (recompute dominance)"

    benchmark.extra_info["to_virtual_ms"] = round(to_virtual / 1000, 4)
    benchmark.extra_info["to_native_ms"] = round(to_native / 1000, 4)


def test_sec74_attach_scales_with_pt_pages(bench_config):
    """The stated mechanism: switch time tracks the page-table population
    (more processes -> more PT pages -> longer recompute)."""
    small = Machine(bench_config)
    mc_small = Mercury(small)
    k = mc_small.create_kernel(image_pages=384)
    rec_small = mc_small.attach()
    mc_small.detach()

    mc_big = _populated_mercury(bench_config)
    rec_big = mc_big.attach()
    mc_big.detach()

    assert rec_big.pt_pages > rec_small.pt_pages
    assert rec_big.cycles > rec_small.cycles


def test_sec74_switch_time_is_stable_across_repeats(bench_config):
    mercury = _populated_mercury(bench_config)
    cycles = []
    for _ in range(4):
        rec = mercury.attach()
        cycles.append(rec.cycles)
        mercury.detach()
    assert max(cycles) - min(cycles) <= 0.05 * max(cycles)


def test_sec74_incremental_attach_beats_full_recompute(bench_config):
    """Beyond the paper: with the dirty-root tracker, an idle round trip
    re-pins clean roots instead of revalidating them, so the steady-state
    attach undercuts the paper's full-recompute attach severalfold."""
    full = _populated_mercury(bench_config)
    to_virtual_full, _ = _measure(full)

    inc = _populated_mercury(bench_config, incremental_attach=True)
    inc.attach()   # first attach always pays the full validation
    inc.detach()
    inc.engine.records.clear()
    to_virtual_inc, _ = _measure(inc)

    assert inc.mmu_log.full_recomputes == 1
    assert to_virtual_inc < 0.5 * to_virtual_full, \
        (f"incremental attach {to_virtual_inc:.1f} us should be well under "
         f"half the full recompute's {to_virtual_full:.1f} us")
