"""Ablation A4: direct vs shadow paging (§3.2.2).

"As the page table entries in guest operating systems are directly
installed in hardware, no translation is required during a mode switch,
which could largely reduce the complexity of implementing a
self-virtualization system.  Currently, Mercury utilizes the direct access
mode to simplify the implementation."

This bench measures what that choice bought: mode-switch cost, steady-state
runtime overhead in virtual mode, and the shadow memory tax.
"""

import pytest

from repro import Machine, Mercury
from repro.core.mercury import PagingMode

PROCESSES = 16


def _build(bench_config, paging):
    machine = Machine(bench_config)
    mc = Mercury(machine, paging=paging)
    k = mc.create_kernel(image_pages=256)
    cpu = machine.boot_cpu
    for _ in range(PROCESSES):
        k.syscall(cpu, "fork")
    return mc


def _virtual_workload_cycles(mc) -> int:
    k = mc.kernel
    cpu = mc.machine.boot_cpu
    t0 = cpu.rdtsc()
    for _ in range(3):
        child = k.spawn_process(cpu, "churn", image_pages=96)
        k.run_and_reap(cpu, child)
    return cpu.rdtsc() - t0


def test_ablation_direct_vs_shadow(benchmark, bench_config):
    def run():
        out = {}
        for paging in (PagingMode.DIRECT, PagingMode.SHADOW):
            mc = _build(bench_config, paging)
            attach = mc.attach()
            tax = (mc.pager.shadow_frames_in_use()
                   if mc.pager is not None else 0)
            runtime = _virtual_workload_cycles(mc)
            detach = mc.detach()
            out[paging.value] = {
                "attach_us": attach.us(), "detach_us": detach.us(),
                "runtime_cycles": runtime, "shadow_frames": tax,
            }
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    d, s = out["direct"], out["shadow"]

    print()
    print("Ablation A4: direct vs shadow paging (Section 3.2.2)")
    print()
    print(f"  {'mode':<10}{'attach (µs)':>13}{'detach (µs)':>13}"
          f"{'virt workload (Mcyc)':>22}{'shadow frames':>15}")
    print(f"  {'-'*73}")
    for name, v in out.items():
        print(f"  {name:<10}{v['attach_us']:>13.2f}{v['detach_us']:>13.2f}"
              f"{v['runtime_cycles']/1e6:>22.2f}{v['shadow_frames']:>15}")
    overhead = (s["runtime_cycles"] - d["runtime_cycles"]) \
        / d["runtime_cycles"]
    print(f"\n  shadow runtime overhead in virtual mode: {overhead*100:.1f}%")
    print(f"  shadow attach cost vs direct: "
          f"{s['attach_us']/d['attach_us']:.2f}x")

    # §3.2.2's argument, quantified: shadow needs the translation pass at
    # switch time, taxes memory, and costs more per PT update at runtime
    assert s["attach_us"] > d["attach_us"]
    assert s["shadow_frames"] > 0 and d["shadow_frames"] == 0
    assert overhead > 0.02
    benchmark.extra_info["shadow_attach_ratio"] = round(
        s["attach_us"] / d["attach_us"], 2)
    benchmark.extra_info["shadow_runtime_overhead_pct"] = round(
        overhead * 100, 1)


def test_shadow_results_identical_to_direct(bench_config):
    """Same workload, both paging modes: identical observable results."""
    results = {}
    for paging in (PagingMode.DIRECT, PagingMode.SHADOW):
        mc = _build(bench_config, paging)
        k = mc.kernel
        cpu = mc.machine.boot_cpu
        mc.attach()
        fd = k.syscall(cpu, "open", "/same", True)
        k.syscall(cpu, "write", fd, "identical", 4096)
        pid = k.syscall(cpu, "fork")
        k.run_and_reap(cpu, k.procs.get(pid))
        k.syscall(cpu, "lseek", fd, 0)
        results[paging] = (k.syscall(cpu, "read", fd, 4096),
                           len(k.procs.live_tasks()))
        mc.detach()
    assert results[PagingMode.DIRECT] == results[PagingMode.SHADOW]
