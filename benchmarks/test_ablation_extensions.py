"""Ablation A3: the §8 future-work extensions, quantified.

1. **Hardware-assisted switch** (VT-x VMCS + EPT) vs the paper's software
   switch: the VMCS collapses the piecewise transfer/reload into one
   capture+entry, and the EPT removes the page type/count recompute — the
   dominant attach cost.  Measured head to head at the same process
   population.
2. **Tree rendezvous** vs the flat IPI + shared-variable protocol (§5.4)
   across core counts: the CP's gather work drops from O(n) to O(log n).
"""

import pytest

from repro import Machine, Mercury
from repro.core.hvm import HvmMercury
from repro.core.smp_tree import use_tree_protocol

PROCESSES = 24


def _software(bench_config):
    machine = Machine(bench_config)
    mc = Mercury(machine)
    k = mc.create_kernel(image_pages=256)
    for _ in range(PROCESSES):
        k.syscall(machine.boot_cpu, "fork")
    return mc


def _hardware(bench_config):
    machine = Machine(bench_config)
    h = HvmMercury(machine)
    k = h.create_kernel(image_pages=256)
    for _ in range(PROCESSES):
        k.syscall(machine.boot_cpu, "fork")
    return h


def test_ablation_hvm_vs_software_switch(benchmark, bench_config):
    def run():
        sw = _software(bench_config)
        sw_attach = sw.attach()
        sw_detach = sw.detach()
        hw = _hardware(bench_config)
        hw_attach = hw.attach()
        hw_detach = hw.detach()
        return sw_attach, sw_detach, hw_attach, hw_detach

    sw_a, sw_d, hw_a, hw_d = benchmark.pedantic(run, iterations=1, rounds=1)

    print()
    print("Ablation A3a: software vs hardware-assisted mode switch (Section 8)")
    print()
    print(f"  {'path':<26}{'attach (µs)':>13}{'detach (µs)':>13}")
    print(f"  {'-'*52}")
    print(f"  {'paravirtual (paper)':<26}{sw_a.us():>13.2f}{sw_d.us():>13.2f}")
    print(f"  {'VT-x VMCS + EPT':<26}{hw_a.us():>13.2f}{hw_d.us():>13.2f}")
    speedup = sw_a.cycles / hw_a.cycles
    print(f"\n  attach speedup: {speedup:.1f}x "
          f"(EPT build over {hw_a.ept_frames} frames replaces the "
          f"{sw_a.pt_pages}-PT-page recompute)")

    assert hw_a.cycles < sw_a.cycles          # the §8 prediction
    assert hw_d.cycles < sw_d.cycles
    assert speedup > 2.0
    benchmark.extra_info["sw_attach_us"] = round(sw_a.us(), 2)
    benchmark.extra_info["hvm_attach_us"] = round(hw_a.us(), 2)
    benchmark.extra_info["speedup"] = round(speedup, 1)


def test_ablation_hvm_runtime_microbenchmarks(benchmark, bench_config):
    """Runtime (not just switch-time) effect of hardware assistance: with
    EPT, the guest's page-table work runs at native speed; only
    exit-controlled operations (CR3 loads in context switches) pay."""
    from repro.bench.configs import build_config
    from repro.workloads.lmbench import (bench_ctx, bench_fork,
                                         bench_page_fault)

    def run():
        rows = {}
        for key in ("N-L", "X-0"):
            sut = build_config(key, bench_config, image_pages=256)
            rows[key] = {
                "fork": bench_fork(sut.kernel, sut.cpu, iters=3),
                "ctx": bench_ctx(sut.kernel, sut.cpu, 2, 0, rounds=3),
                "pagefault": bench_page_fault(sut.kernel, sut.cpu, iters=32),
            }
        machine = Machine(bench_config)
        hvm = HvmMercury(machine)
        k = hvm.create_kernel(image_pages=256)
        hvm.attach()
        rows["H-V"] = {
            "fork": bench_fork(k, machine.boot_cpu, iters=3),
            "ctx": bench_ctx(k, machine.boot_cpu, 2, 0, rounds=3),
            "pagefault": bench_page_fault(k, machine.boot_cpu, iters=32),
        }
        hvm.detach()
        return rows

    rows = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Ablation A3c: guest-mode microbenchmarks, paravirtual vs HVM (µs)")
    print()
    print(f"  {'row':<12}{'N-L':>10}{'X-0 (PV)':>12}{'H-V (EPT)':>12}")
    print(f"  {'-'*46}")
    for row in ("fork", "ctx", "pagefault"):
        print(f"  {row:<12}{rows['N-L'][row]:>10.2f}"
              f"{rows['X-0'][row]:>12.2f}{rows['H-V'][row]:>12.2f}")

    # fork: the paravirtual MMU tax disappears under EPT...
    assert rows["H-V"]["fork"] < rows["X-0"]["fork"] * 0.5
    assert rows["H-V"]["fork"] < rows["N-L"]["fork"] * 1.5
    # ...page faults are near-native (no trap bounce, no mmu_update)...
    assert rows["H-V"]["pagefault"] < rows["X-0"]["pagefault"] * 0.6
    # ...but context switches still pay the CR3 vmexit
    assert rows["H-V"]["ctx"] > rows["N-L"]["ctx"]
    for row in ("fork", "ctx", "pagefault"):
        benchmark.extra_info[f"hvm_{row}_us"] = round(rows["H-V"][row], 2)


def test_ablation_flat_vs_tree_rendezvous(benchmark, bench_config):
    def gather_cycles(ncpus, tree):
        machine = Machine(bench_config.with_cpus(ncpus))
        mc = Mercury(machine)
        k = mc.create_kernel(image_pages=64)
        for _ in range(6):
            k.syscall(machine.boot_cpu, "fork")
        if tree:
            use_tree_protocol(mc)
        rec = mc.attach()
        mc.detach()
        return rec.rendezvous.gather_cycles

    def run():
        out = {}
        for n in (2, 4, 8, 16, 32):
            out[n] = (gather_cycles(n, tree=False),
                      gather_cycles(n, tree=True))
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    print()
    print("Ablation A3b: flat vs tree rendezvous gather time (Section 8)")
    print()
    print(f"  {'cores':>6}{'flat (µs)':>12}{'tree (µs)':>12}{'ratio':>8}")
    print(f"  {'-'*38}")
    for n, (flat, tree) in out.items():
        print(f"  {n:>6}{flat/3000:>12.3f}{tree/3000:>12.3f}"
              f"{flat/tree:>8.2f}")
        benchmark.extra_info[f"flat_vs_tree_{n}"] = round(flat / tree, 2)

    # flat grows linearly; tree logarithmically — the gap must widen
    assert out[32][0] / out[32][1] > out[4][0] / out[4][1]
    assert out[32][1] < out[32][0]
