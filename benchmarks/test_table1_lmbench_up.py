"""Table 1: lmbench OS-latency results, uniprocessor mode.

Regenerates the paper's Table 1 rows for all six configurations and checks
the shape: native ≈ Mercury-native, dom0 ≈ Mercury-virtual, domU ≈
Mercury-hosted, and the virtualization penalties in the paper's bands.

Paper reference values (µs, N-L / X-0): fork 98/482, exec 372/1233,
sh 1203/2977, ctx(2p/0k) 1.64/5.10, ctx(16p/16k) 2.73/6.76,
ctx(16p/64k) 10.30/15.73, mmap 3724/10579, prot fault 0.61/0.97,
page fault 1.22/3.09.
"""

import pytest

from conftest import attach_rows
from repro.bench.report import format_lmbench_table
from repro.bench.runner import run_lmbench_suite

#: (row, lower bound, upper bound) for the X-0 / N-L ratio
SHAPE_BANDS = [
    ("Fork Process", 2.5, 7.0),       # paper: 4.9x
    ("Exec Process", 1.8, 5.0),       # paper: 3.3x
    ("Sh Process", 1.6, 4.0),         # paper: 2.5x
    ("Ctx (2p/0k)", 2.0, 5.5),        # paper: 3.1x
    ("Ctx (16p/16k)", 1.7, 4.0),      # paper: 2.5x
    ("Ctx (16p/64k)", 1.1, 2.5),      # paper: 1.5x
    ("Mmap LT", 1.5, 4.5),            # paper: 2.8x ("65% loss")
    ("Prot Fault", 1.2, 2.6),         # paper: 1.6x
    ("Page Fault", 1.8, 4.0),         # paper: 2.5x
]


@pytest.fixture(scope="module")
def table(bench_config):
    return run_lmbench_suite(num_cpus=1, config=bench_config)


def test_table1_lmbench_up(benchmark, bench_config):
    table = benchmark.pedantic(
        lambda: run_lmbench_suite(num_cpus=1, config=bench_config),
        iterations=1, rounds=1)
    print()
    print(format_lmbench_table(
        table, "Table 1. Lmbench latency results in uniprocessor mode"))
    attach_rows(benchmark, table)

    for row, lo, hi in SHAPE_BANDS:
        ratio = table[row]["X-0"] / table[row]["N-L"]
        assert lo < ratio < hi, f"{row}: X-0/N-L ratio {ratio:.2f} off-shape"

    for row in table:
        # Mercury's native mode ~= native Linux (the <2% claim)
        assert table[row]["M-N"] == pytest.approx(table[row]["N-L"], rel=0.03)
        # Mercury's virtual mode ~= Xen dom0; hosted guest ~= domU
        assert table[row]["M-V"] == pytest.approx(table[row]["X-0"], rel=0.05)
        assert table[row]["M-U"] == pytest.approx(table[row]["X-U"], rel=0.05)


def test_table1_native_absolute_calibration(table):
    """The native column is calibrated against the paper's numbers; allow
    a generous band since our substrate is a simulator."""
    paper_native = {"Fork Process": 98, "Exec Process": 372,
                    "Sh Process": 1203, "Ctx (2p/0k)": 1.64,
                    "Ctx (16p/16k)": 2.73, "Ctx (16p/64k)": 10.30,
                    "Mmap LT": 3724, "Prot Fault": 0.61, "Page Fault": 1.22}
    for row, expect in paper_native.items():
        assert table[row]["N-L"] == pytest.approx(expect, rel=0.45), \
            f"{row}: native {table[row]['N-L']:.2f}µs vs paper {expect}µs"
