"""Table 2: lmbench OS-latency results, SMP mode (two processors).

Same rows as Table 1 on a 2-CPU machine.  The additional assertion is the
paper's §7.2 observation: "due to the introduced locks and possible
contentions, most of the operations in SMP mode are a bit expensive
compared to those in UP mode" — every SMP row must sit at or above its UP
counterpart, by a modest margin.
"""

import pytest

from conftest import attach_rows
from repro.bench.report import format_lmbench_table
from repro.bench.runner import run_lmbench_suite


@pytest.fixture(scope="module")
def tables(bench_config):
    up = run_lmbench_suite(num_cpus=1, config=bench_config,
                           keys=("N-L", "X-0"))
    smp = run_lmbench_suite(num_cpus=2, config=bench_config)
    return up, smp


def test_table2_lmbench_smp(benchmark, bench_config):
    table = benchmark.pedantic(
        lambda: run_lmbench_suite(num_cpus=2, config=bench_config),
        iterations=1, rounds=1)
    print()
    print(format_lmbench_table(
        table, "Table 2. Lmbench latency results in SMP mode"))
    attach_rows(benchmark, table)

    for row in table:
        assert table[row]["M-N"] == pytest.approx(table[row]["N-L"], rel=0.03)
        assert table[row]["M-V"] == pytest.approx(table[row]["X-0"], rel=0.05)
        ratio = table[row]["X-0"] / table[row]["N-L"]
        assert ratio > 1.05, f"{row}: no virtualization penalty in SMP?"


def test_smp_rows_sit_above_up_rows(tables):
    up, smp = tables
    higher = 0
    for row in up:
        if smp[row]["N-L"] >= up[row]["N-L"] * 0.999:
            higher += 1
    # "most of the operations" — allow mmap-style rows to tie
    assert higher >= len(up) - 2


def test_smp_premium_is_modest(tables):
    """SMP adds percents, not multiples (paper: fork 98 -> 128 µs)."""
    up, smp = tables
    for row in up:
        premium = smp[row]["N-L"] / up[row]["N-L"]
        assert premium < 2.2, f"{row}: SMP premium {premium:.2f}x too large"
