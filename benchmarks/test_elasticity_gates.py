"""Memory-elasticity bench gates: attach-time drift vs. balloon churn,
the reclaim-strategy ablation, and guest-domain fleet serving.

Records a ``memory`` section in ``BENCH_perf.json``:

- steady-state incremental attach stays under 50 µs at zero balloon
  churn (ballooning must not tax the paper's headline switch time when
  nothing ballooned);
- attach time grows monotonically with the churn rate — each ballooned
  root is revalidated once, nothing else is;
- the hypervisor-driven and guest-delegated reclaim strategies converge
  to identical final domain sizes, differing only in reclaim latency and
  victim-page-fault tax;
- frame ownership is conserved across the squeeze (Δowned == Δledger:
  every inflated frame is in the host free pool or re-granted, never
  double-owned);
- a fleet serving from hosted guest domains under the elastic controller
  is byte-identical at workers 1 and 4.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.elasticity import run_elasticity
from repro.fleet import run_fleet

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_perf.json"

#: the zero-churn gate: ballooning may not tax the steady attach path
MAX_STEADY_ATTACH_US = 50.0

FLEET_MACHINES = 6
FLEET_GUESTS = 2
SEED = 2007  # ICPP'07


def test_elasticity_gates_and_record():
    result = run_elasticity()
    summary = result.summary()

    # steady-state: zero churn keeps the incremental fast path
    assert result.steady_attach_us < MAX_STEADY_ATTACH_US, (
        f"zero-churn attach {result.steady_attach_us}us above the "
        f"{MAX_STEADY_ATTACH_US}us gate: ballooning taxed the trusted "
        f"fast path")

    # drift: attach cost is monotone in the number of ballooned roots,
    # and a churn-free re-attach always falls back near steady state
    assert result.drift_monotone, summary["drift_attach_us"]
    for entry in result.drift:
        assert entry["balloon_marks"] == entry["churn"]
        assert entry["reattach_us"] < MAX_STEADY_ATTACH_US

    # ablation: strategy changes the path, not the destination
    assert result.final_sizes_equal, {
        k: v["final_pages"] for k, v in result.ablation.items()}
    assert result.conservation_ok
    hyp = result.ablation["hypervisor-driven"]
    dele = result.ablation["guest-delegated"]
    for arm in (hyp, dele):
        assert arm["squeezed_pages"] == arm["floor"], (
            f"{arm['strategy']} never reached the floor")
        assert arm["pages_reclaimed"] > 0
        assert arm["reclaim_latency_cycles_max"] > 0
    # the fault tax is the ablation's point: host-picked victims are hot
    assert hyp["victim_unmaps"] > dele["victim_unmaps"]
    assert hyp["victim_faults"] > dele["victim_faults"]

    # guest-domain fleet serving: traffic flows through the hosted
    # domains, elasticity runs under load, and the shard count never
    # changes a byte
    serial = run_fleet(machines=FLEET_MACHINES, workers=1, seed=SEED,
                       scenario="liveupdate", requests=FLEET_MACHINES * 24,
                       guest_domains=FLEET_GUESTS)
    fanned = run_fleet(machines=FLEET_MACHINES, workers=4, seed=SEED,
                       scenario="liveupdate", requests=FLEET_MACHINES * 24,
                       guest_domains=FLEET_GUESTS)
    assert fanned.canonical_output() == serial.canonical_output()
    fleet_summary = serial.summary()
    assert fleet_summary["completed"] == fleet_summary["requests"]
    # every served request went to a guest domain at or above its floor
    assert fleet_summary["guest_served"] == fleet_summary["completed"]
    assert fleet_summary["floor_skips"] == 0

    try:
        record = json.loads(RESULT_FILE.read_text())
    except (OSError, ValueError):
        record = {}
    record["memory"] = {
        "workload": "run_elasticity(): dom0 balloon churn vs. incremental "
                    "attach drift, plus a hosted-guest squeeze-to-floor "
                    "ablation of the two reclaim strategies",
        "steady_attach_us": result.steady_attach_us,
        "steady_attach_gate_us": MAX_STEADY_ATTACH_US,
        "drift_attach_us": summary["drift_attach_us"],
        "drift_monotone": result.drift_monotone,
        "ablation": {
            strategy: {
                "final_pages": arm["final_pages"],
                "pages_reclaimed": arm["pages_reclaimed"],
                "pages_granted": arm["pages_granted"],
                "reclaim_latency_cycles_p50":
                    arm["reclaim_latency_cycles_p50"],
                "reclaim_latency_cycles_max":
                    arm["reclaim_latency_cycles_max"],
                "victim_unmaps": arm["victim_unmaps"],
                "victim_faults": arm["victim_faults"],
            } for strategy, arm in result.ablation.items()},
        "final_sizes_equal": result.final_sizes_equal,
        "conservation_ok": result.conservation_ok,
        "fleet_guest_domains": {
            "machines": FLEET_MACHINES,
            "guests_per_machine": FLEET_GUESTS,
            "guest_served": fleet_summary["guest_served"],
            "floor_skips": fleet_summary["floor_skips"],
            "workers4_byte_identical": True,
        },
    }
    RESULT_FILE.write_text(json.dumps(record, indent=2) + "\n")
