"""Fault-rate sweep bench: abort/rollback behaviour vs. fault probability.

Deterministic (seeded) companion to ``BENCH_perf.json``: records how the
transactional switch engine degrades as faults get more likely — commits
fall, aborts rise, retries are consumed — while the invariant suite stays
green at every point.  Results land in ``BENCH_faults.json``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.bench.faultsweep import DEFAULT_RATES, run_fault_sweep, sweep_as_rows

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_faults.json"


def test_fault_sweep_and_record():
    points = run_fault_sweep(rates=DEFAULT_RATES, rounds=24, seed=1234)

    by_rate = {p.fault_rate: p for p in points}
    baseline = by_rate[0.0]
    # fault-free: every attempt commits, nothing rolls back or aborts
    assert baseline.commits == baseline.switch_attempts
    assert baseline.aborts == 0
    assert baseline.rollbacks == 0
    assert baseline.faults_injected == 0

    for p in points:
        # no attempt vanishes: it either commits or terminally aborts
        assert p.commits + p.aborts == p.switch_attempts
        # dependability is unconditional: invariants hold at every rate
        assert p.invariant_violations == 0
        if p.fault_rate > 0:
            assert p.faults_injected > 0
            # injected faults are survived by rolling back, not by luck
            assert p.rollbacks > 0

    # more faults never mean more commits
    rates = sorted(by_rate)
    for lo, hi in zip(rates, rates[1:]):
        assert by_rate[hi].commits <= by_rate[lo].commits + 2, (
            "commit count should degrade (roughly) monotonically with rate")

    RESULT_FILE.write_text(json.dumps(sweep_as_rows(points), indent=2) + "\n")
