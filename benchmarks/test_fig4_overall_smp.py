"""Figure 4: relative application performance, SMP mode.

"The evaluation on five application level benchmarks has the similar
results in uniprocessor mode.  The overhead in Mercury in the three modes
is less than 2% compared to native Linux, domain0 and domainU." (§7.3)
"""

import pytest

from conftest import attach_rows
from repro.bench.report import format_relative_figure
from repro.bench.runner import relative_to_native, run_app_suite


def test_fig4_overall_smp(benchmark, bench_config):
    table = benchmark.pedantic(
        lambda: run_app_suite(num_cpus=2, config=bench_config),
        iterations=1, rounds=1)
    rel = relative_to_native(table)
    print()
    print(format_relative_figure(
        rel, "Fig. 4. Relative performance of Mercury against Linux and "
             "Xen-Linux in SMP mode"))
    attach_rows(benchmark, rel)

    # the paper's §7.3 claim, verbatim: Mercury within 2% of each
    # counterpart in SMP mode
    for row in rel:
        assert rel[row]["M-N"] == pytest.approx(1.0, abs=0.02)
        assert rel[row]["M-V"] == pytest.approx(rel[row]["X-0"], rel=0.02)
        assert rel[row]["M-U"] == pytest.approx(rel[row]["X-U"], rel=0.02)

    # similar shape to Fig. 3
    assert rel["OSDB-IR"]["X-0"] < 0.85
    assert rel["dbench"]["X-U"] > 1.0
    assert rel["iperf-tcp"]["X-U"] < rel["iperf-tcp"]["X-0"] < 0.70
