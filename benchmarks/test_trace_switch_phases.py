"""Per-phase switch-latency breakdown and tracing-overhead accounting.

Three jobs:

- Decompose the §7.4 headline (~0.2 ms attach / ~0.06 ms detach) into the
  §4.3 phases using the cycle-domain tracer — once for the paper's
  full-recompute attach and once for the incremental (dirty-root) steady
  state — and record both tables to ``BENCH_perf.json`` under
  ``switch_trace``.
- **Regression gates** (vs the committed ``switch_trace`` section,
  mirroring the io-datapath gates): the incremental steady-state
  ``transfer.page-tables`` must stay under 50 µs simulated, and neither it
  nor the full-recompute phase may exceed its committed value by >10%.
  The simulator is deterministic, so the gates are exact re-runs of the
  committed numbers — 10% is headroom for intentional cost-model tuning,
  not for noise.
- Bound the cost of the *disabled* tracer: every hook is one
  ``_ACTIVE is None`` test, so the overhead on a real workload is (hook
  traversals × guard cost).  Both factors are measured here and their
  product asserted ≤ 2% of the workload's wall time.
"""

from __future__ import annotations

import json
import time
import timeit
from pathlib import Path

from repro import Machine, Mercury, trace
from repro.bench.configs import build_config
from repro.core.switch import Direction
from repro.workloads.kbuild import run_kbuild

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_perf.json"

PROCESSES = 42
ROUND_TRIPS = 5

#: the paper's Section 7.4 reference numbers
PAPER_ATTACH_MS = 0.22
PAPER_DETACH_MS = 0.06

#: incremental steady-state attach budget for the page-table phase
INCREMENTAL_PT_BUDGET_US = 50.0


def _populated(bench_config, num_cpus=1, incremental_attach=False):
    machine = Machine(bench_config.with_cpus(num_cpus))
    mercury = Mercury(machine, incremental_attach=incremental_attach)
    kernel = mercury.create_kernel(image_pages=384)
    cpu = machine.boot_cpu
    for _ in range(PROCESSES - 1):
        kernel.syscall(cpu, "fork")
    return mercury


def _phase_means_us(mercury, direction: str, freq: int) -> dict[str, float]:
    """Mean per-phase µs over ROUND_TRIPS traced switches of one
    direction (the return leg of each round-trip runs untraced).  Starts
    and ends in native mode."""
    tracer = trace.Tracer(mercury.machine.clock)
    for _ in range(ROUND_TRIPS):
        if direction == "attach":
            with trace.tracing(tracer):
                mercury.attach()
            mercury.detach()
        else:
            mercury.attach()
            with trace.tracing(tracer):
                mercury.detach()
    events = tracer.events()
    assert trace.validate(events, dropped=tracer.dropped) == []
    return {name: round(stat.mean_cycles / freq, 3)
            for name, stat in trace.phase_summary(
                events, names=trace.SWITCH_PHASES).items()}


def test_switch_phase_breakdown_and_disabled_overhead(bench_config):
    freq = bench_config.cost.freq_mhz

    # -- per-phase decomposition of the §7.4 numbers (full recompute) -----
    up = _populated(bench_config, num_cpus=1)
    up.attach(), up.detach()  # warm the accountants before measuring
    attach_us = _phase_means_us(up, "attach", freq)
    detach_us = _phase_means_us(up, "detach", freq)
    attach_total_ms = up.mean_switch_us(Direction.TO_VIRTUAL) / 1000.0
    detach_total_ms = up.mean_switch_us(Direction.TO_NATIVE) / 1000.0

    assert attach_us, "no attach phases recorded"
    assert "transfer.page-tables" in attach_us
    assert "reload.cp" in attach_us
    # §7.4: the page-info recompute dominates the paper-default attach
    assert attach_us["transfer.page-tables"] == max(
        v for k, v in attach_us.items() if k != "switch.commit")

    # -- the incremental steady state -------------------------------------
    inc = _populated(bench_config, num_cpus=1, incremental_attach=True)
    inc.attach(), inc.detach()  # first attach pays the full validation
    inc.engine.records.clear()
    inc_attach_us = _phase_means_us(inc, "attach", freq)
    inc_attach_total_ms = inc.mean_switch_us(Direction.TO_VIRTUAL) / 1000.0
    inc_pt_us = inc_attach_us["transfer.page-tables"]

    assert inc.mmu_log.full_recomputes == 1, \
        "warmed steady state must never fall back to the full recompute"
    assert inc_pt_us < INCREMENTAL_PT_BUDGET_US, (
        f"incremental attach transfer.page-tables {inc_pt_us:.1f} us "
        f"blew the {INCREMENTAL_PT_BUDGET_US:.0f} us budget")
    assert inc_pt_us < attach_us["transfer.page-tables"], \
        "incremental must undercut the full recompute"

    # -- >10% regression gates vs the committed baseline ------------------
    try:
        committed = json.loads(RESULT_FILE.read_text()).get("switch_trace")
    except (OSError, ValueError):
        committed = None
    if committed is not None:
        full_pt = committed["per_phase_us"]["attach"]["transfer.page-tables"]
        assert attach_us["transfer.page-tables"] <= 1.1 * full_pt, (
            f"full-recompute transfer.page-tables regressed: "
            f"{attach_us['transfer.page-tables']:.1f} us vs committed "
            f"{full_pt:.1f} us")
        inc_committed = committed.get("incremental")
        if inc_committed is not None:
            base = inc_committed["per_phase_us"]["transfer.page-tables"]
            assert inc_pt_us <= 1.1 * base, (
                f"incremental transfer.page-tables regressed: "
                f"{inc_pt_us:.1f} us vs committed {base:.1f} us")
            assert inc_attach_total_ms <= 1.1 * inc_committed["attach_total_ms"]

    # -- disabled-tracer overhead bound -----------------------------------
    # guard cost: what every hot-path hook pays when no tracer is installed
    per_guard_s = timeit.timeit(
        "t._ACTIVE is not None", setup="from repro import trace as t",
        number=1_000_000) / 1e6

    # traversal count + wall time of a real workload, tracer disabled
    assert trace.active() is None
    sut = build_config("M-V")
    t0 = time.perf_counter()
    run_kbuild(sut.kernel, sut.cpu, files=12)
    wall_s = time.perf_counter() - t0
    # every hypercall and doorbell crosses one guard; switch-pipeline hooks
    # add a handful more per switch — bound generously with 4 guards per
    # hypercall-equivalent event
    traversals = 4 * (sut.vmm.hypercalls_served + sut.vmm.traps_emulated)
    overhead_pct = 100.0 * (traversals * per_guard_s) / wall_s

    assert overhead_pct <= 2.0, (
        f"disabled tracer costs {overhead_pct:.3f}% of kbuild wall time "
        f"({traversals} guard traversals x {per_guard_s * 1e9:.1f} ns)")

    # -- record ------------------------------------------------------------
    try:
        result = json.loads(RESULT_FILE.read_text())
    except (OSError, ValueError):
        result = {}
    result["switch_trace"] = {
        "paper_reference_ms": {"attach": PAPER_ATTACH_MS,
                               "detach": PAPER_DETACH_MS},
        "measured_total_ms": {"attach": round(attach_total_ms, 4),
                              "detach": round(detach_total_ms, 4)},
        "per_phase_us": {"attach": attach_us, "detach": detach_us},
        "incremental": {
            "attach_total_ms": round(inc_attach_total_ms, 4),
            "per_phase_us": inc_attach_us,
            "pt_budget_us": INCREMENTAL_PT_BUDGET_US,
        },
        "disabled_overhead": {
            "guard_ns": round(per_guard_s * 1e9, 2),
            "guard_traversals": traversals,
            "kbuild_wall_s": round(wall_s, 3),
            "overhead_pct": round(overhead_pct, 4),
        },
    }
    RESULT_FILE.write_text(json.dumps(result, indent=2) + "\n")
