"""Ablation A2 (§5.4 / §8): mode-switch scalability with core count.

The paper's future-work section worries that "the performance scalability
of Mercury will be of great importance in supporting a relatively
large-scale multicore machine" under the IPI + shared-variable protocol.
This bench measures attach latency and rendezvous gather time from 1 to 16
cores and records where the protocol's serial parts start to matter.
"""

import pytest

from repro import Machine, Mercury

CORE_COUNTS = (1, 2, 4, 8, 16)


def _switch_on(bench_config, ncpus):
    machine = Machine(bench_config.with_cpus(ncpus))
    mercury = Mercury(machine)
    kernel = mercury.create_kernel(image_pages=256)
    cpu = machine.boot_cpu
    for _ in range(12):
        kernel.syscall(cpu, "fork")
    rec = mercury.attach()
    mercury.detach()
    return rec


def test_ablation_smp_scaling(benchmark, bench_config):
    def run():
        return {n: _switch_on(bench_config, n) for n in CORE_COUNTS}

    recs = benchmark.pedantic(run, iterations=1, rounds=1)

    print()
    print("Ablation A2: mode-switch scalability with core count (Section 5.4)")
    print()
    print(f"  {'cores':>6}{'attach (µs)':>14}{'gather (µs)':>14}"
          f"{'IPIs':>6}")
    print(f"  {'-'*40}")
    for n, rec in recs.items():
        gather = (rec.rendezvous.gather_cycles / 3000
                  if rec.rendezvous else 0.0)
        ipis = rec.rendezvous.ipis_sent if rec.rendezvous else 0
        print(f"  {n:>6}{rec.us():>14.2f}{gather:>14.3f}{ipis:>6}")
        benchmark.extra_info[f"attach_us_{n}cores"] = round(rec.us(), 2)

    # gather time grows with cores (serial IPI acks)...
    gathers = [recs[n].rendezvous.gather_cycles for n in CORE_COUNTS[1:]]
    assert gathers == sorted(gathers)
    # ...but the overall switch stays sub-linear: 16 cores costs far less
    # than 8x the 2-core switch, because per-CPU reloads run in parallel
    assert recs[16].cycles < 8 * recs[2].cycles
    # and every configuration still commits sub-millisecond
    for n in CORE_COUNTS:
        assert recs[n].ms() < 1.0


def test_ablation_rendezvous_ipis_match_core_count(bench_config):
    for n in (2, 4):
        rec = _switch_on(bench_config, n)
        assert rec.rendezvous.ipis_sent == n - 1
        assert rec.rendezvous.num_cpus == n
