"""§5.1.1 under load: "due to the fact that almost all execution in the
virtualization object is short (because it is non-blocking) or
synchronous, this problem [a busy refcount at switch time] rarely happens."

This bench fires mode-switch requests from timer events landing at
arbitrary points inside a page-table-heavy workload and records how often
a request found the VO busy (forcing the 10 ms retry) and what the commit
latencies looked like.
"""

import pytest

from repro import Machine, Mercury
from repro.core.mercury import Mode
from repro.core.switch import Direction


def test_switches_under_load(benchmark, bench_config):
    def run():
        machine = Machine(bench_config)
        mercury = Mercury(machine)
        kernel = mercury.create_kernel(image_pages=192)
        cpu = machine.boot_cpu
        clock = machine.clock

        # schedule switch requests at awkward, prime-offset instants
        # throughout the workload window
        n_requests = 12
        for i in range(n_requests):
            delay = 700_003 + i * 1_700_021  # cycles; lands mid-workload

            def fire(i=i):
                want = (Direction.TO_VIRTUAL if i % 2 == 0
                        else Direction.TO_NATIVE)
                # only request transitions that are currently legal
                if want is Direction.TO_VIRTUAL and \
                        mercury.mode is Mode.NATIVE:
                    mercury.engine.request(want)
                elif want is Direction.TO_NATIVE and \
                        mercury.mode is not Mode.NATIVE:
                    mercury.engine.request(want)

            clock.schedule(delay, fire)

        # the workload: continuous fork/exec churn (PT-heavy, so if VO
        # occupancy were ever going to collide with a request, it would
        # be here)
        for _ in range(30):
            child = kernel.spawn_process(cpu, "churn", image_pages=64)
            kernel.run_and_reap(cpu, child)
        clock.drain_until_idle()
        machine.poll()
        return mercury

    mercury = benchmark.pedantic(run, iterations=1, rounds=1)
    records = mercury.engine.records
    failed = mercury.engine.failed_attempts
    total_retries = sum(r.retries for r in records)

    print()
    print("Section 5.1.1 under load: switch requests vs a fork/exec churn")
    print(f"  committed switches : {len(records)}")
    print(f"  busy-at-request    : {failed} "
          f"(paper: 'this problem rarely happens')")
    print(f"  retries consumed   : {total_retries}")
    if records:
        us = [r.us() for r in records]
        print(f"  commit latency     : min {min(us):.1f} / "
              f"max {max(us):.1f} µs")

    assert len(records) >= 4, "requests never landed during the workload"
    # the §5.1.1 claim, quantified: busy collisions are rare because VO
    # sections are short and non-blocking
    assert failed <= len(records) // 2
    benchmark.extra_info["switches"] = len(records)
    benchmark.extra_info["busy_collisions"] = failed
