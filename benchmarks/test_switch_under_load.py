"""§5.1.1 under load: "due to the fact that almost all execution in the
virtualization object is short (because it is non-blocking) or
synchronous, this problem [a busy refcount at switch time] rarely happens."

Under the simulation scheduler (:mod:`repro.sim`), kbuild and iperf run as
interleaved cooperative tasks while a storm task lands attach/detach
requests between and *inside* their slices.  Requests delivered at a
sensitive-code preempt point observe a nonzero VO refcount, arm the 10 ms
retry timer, and commit on a later delivery — so the latency distribution
is bimodal: tens of microseconds when quiescent, ≥ one retry period when
contended.  Results land in ``BENCH_perf.json`` under ``switch_under_load``.
"""

from __future__ import annotations

import json
import statistics
from pathlib import Path

from repro.core.switch import RETRY_PERIOD_MS
from repro.bench.underload import run_switch_under_load

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_FILE = REPO_ROOT / "BENCH_perf.json"

ROUNDS = 5


def _split_by_contention(result):
    """Latencies (µs) split at the retry-period floor: anything that ate a
    retry waited at least one full period."""
    floor_us = RETRY_PERIOD_MS * 1000
    lats = result.attach_latency_us + result.detach_latency_us
    contended = [x for x in lats if x >= floor_us]
    quick = [x for x in lats if x < floor_us]
    return contended, quick


def test_switch_under_load_scenario(benchmark):
    result = benchmark.pedantic(run_switch_under_load, kwargs={
        "rounds": ROUNDS}, iterations=1, rounds=1)

    contended, quick = _split_by_contention(result)
    total_retries = sum(result.per_switch_retries)

    print()
    print("Section 5.1.1 under load: attach/detach storm vs kbuild + iperf")
    print(f"  committed switches : {result.records}")
    print(f"  busy-at-delivery   : {result.busy_attempts} "
          f"(paper: 'this problem rarely happens')")
    print(f"  retries consumed   : {total_retries}, aborts: {result.aborts}")
    print(f"  contended commits  : {len(contended)}  "
          f"mean {statistics.mean(contended) / 1000:.2f} ms" if contended
          else "  contended commits  : 0")
    print(f"  quiescent commits  : {len(quick)}  "
          f"mean {statistics.mean(quick):.1f} µs")
    print(f"  kbuild             : {result.kbuild_elapsed_us / 1e6:.3f} s, "
          f"iperf: {result.iperf_mbit_s:.0f} Mbit/s")

    # every request eventually commits; the storm alternates directions
    assert result.records == 2 * ROUNDS
    assert result.aborts == 0
    # the load makes contention real, but — the §5.1.1 claim — rare:
    # VO occupancy is short, so most deliveries still find refcount 0
    assert result.busy_attempts >= 1
    assert result.busy_attempts <= result.records // 2
    # bimodal latency: retried commits wait out the period, quiescent
    # commits stay well under a millisecond (idle-grade, §7.4 territory)
    assert contended and quick
    assert min(contended) >= RETRY_PERIOD_MS * 1000
    assert max(quick) < 1000.0

    benchmark.extra_info["switches"] = result.records
    benchmark.extra_info["busy_collisions"] = result.busy_attempts
    benchmark.extra_info["retries"] = total_retries

    try:
        data = json.loads(RESULT_FILE.read_text())
    except (OSError, ValueError):
        data = {}
    data["switch_under_load"] = {
        "rounds": ROUNDS,
        "committed_switches": result.records,
        "busy_at_delivery": result.busy_attempts,
        "aborts": result.aborts,
        "retry_histogram": {str(k): v for k, v in
                            sorted(result.retry_histogram.items())},
        "attach_latency_us": result.attach_latency_us,
        "detach_latency_us": result.detach_latency_us,
        "contended_mean_ms": (round(statistics.mean(contended) / 1000, 3)
                              if contended else None),
        "quiescent_mean_us": round(statistics.mean(quick), 2),
        "retry_period_ms": RETRY_PERIOD_MS,
        "kbuild_elapsed_s": round(result.kbuild_elapsed_us / 1e6, 4),
        "iperf_mbit_s": round(result.iperf_mbit_s, 1),
    }
    RESULT_FILE.write_text(json.dumps(data, indent=2) + "\n")


def test_switch_under_load_is_deterministic():
    """The whole scenario — workload slices, timer events, retries — is a
    pure function of its parameters: two runs, identical canonical bytes."""
    first = run_switch_under_load(rounds=ROUNDS)
    second = run_switch_under_load(rounds=ROUNDS)
    assert first.canonical_output() == second.canonical_output()
