#!/usr/bin/env python3
"""Online hardware maintenance (§6.3): replace a machine's hardware while
its OS (and applications) keep running elsewhere.

Flow: the primary self-virtualizes to full-virtual mode, live-migrates its
execution environment to a standby already in partial-virtual mode, the
operator services the idle hardware, the environment migrates back, and
the primary returns to native mode for full speed.

Run:  python examples/online_maintenance.py
"""

from repro import Machine, Mercury, MachineConfig
from repro.scenarios.maintenance import MaintenanceWindow

import dataclasses


def main() -> None:
    config = dataclasses.replace(MachineConfig(), mem_kb=262_144)

    primary = Mercury(Machine(config, name="rack-a-07"))
    kernel = primary.create_kernel(name="production-linux", image_pages=128)
    cpu = primary.machine.boot_cpu

    standby_machine = Machine(config, clock=primary.machine.clock,
                              name="rack-a-08")
    standby = Mercury(standby_machine)
    standby.create_kernel(name="standby-linux", image_pages=64)
    primary.machine.link_to(standby_machine)

    # a long-running application with durable state
    fd = kernel.syscall(cpu, "open", "/srv/orders.db", True)
    for i in range(8):
        kernel.syscall(cpu, "write", fd, f"order-{i}", 4096)
    kernel.syscall(cpu, "fsync", fd)
    workers = [kernel.syscall(cpu, "fork") for _ in range(4)]
    print(f"production workload: {len(workers)} workers, "
          f"orders.db = {kernel.syscall(cpu, 'stat', '/srv/orders.db')}")

    def replace_dimms() -> None:
        # the machine is idle: the operator takes 90 simulated seconds
        print("  [operator] primary is idle — swapping DIMMs...")
        primary.machine.clock.advance(90 * 3_000_000_000)
        print("  [operator] hardware maintenance complete")

    print("\nstarting maintenance window (migrate away → fix → migrate back)")
    report = MaintenanceWindow(primary, standby).perform(replace_dimms)

    print(f"\nmaintenance window : {report.maintenance_cycles / 3e9:8.2f} s")
    print(f"outbound migration : {report.outbound.total_ms():8.2f} ms "
          f"(downtime {report.outbound.downtime_ms():.3f} ms)")
    print(f"inbound migration  : {report.inbound.total_ms():8.2f} ms "
          f"(downtime {report.inbound.downtime_ms():.3f} ms)")
    print(f"app-visible pause  : {report.disruption_ms():8.3f} ms total")
    print(f"mode afterwards    : {primary.mode.value} (full speed)")

    # the workload state survived the round trip
    k = primary.kernel
    assert k.fs.exists("/srv/orders.db")
    st = k.syscall(primary.machine.boot_cpu, "stat", "/srv/orders.db")
    print(f"orders.db after    : {st}")
    print(f"workers after      : "
          f"{len([t for t in k.procs.live_tasks()]) - 1}")


if __name__ == "__main__":
    main()
