#!/usr/bin/env python3
"""A dependable node: checkpointing, self-healing, and live updates on one
machine — the §6.1/6.2/6.4 scenarios composed, all with zero standing
virtualization overhead.

Run:  python examples/dependable_node.py
"""

import dataclasses

from repro import Machine, Mercury, MachineConfig
from repro.scenarios.checkpoint import checkpoint, restore
from repro.scenarios.healing import SelfHealer
from repro.scenarios.liveupdate import KernelPatch, LiveUpdater


def main() -> None:
    config = dataclasses.replace(MachineConfig(), mem_kb=131_072)
    mercury = Mercury(Machine(config))
    kernel = mercury.create_kernel(name="dependable-linux", image_pages=96)
    cpu = mercury.machine.boot_cpu
    clock = mercury.machine.clock

    fd = kernel.syscall(cpu, "open", "/etc/critical.conf", True)
    kernel.syscall(cpu, "write", fd, "config-v1", 4096)
    kernel.syscall(cpu, "fsync", fd)
    for _ in range(3):
        kernel.syscall(cpu, "fork")

    # ---- §6.1: periodic checkpointing ------------------------------------
    print("== checkpoint/restart (6.1) ==")
    t0 = clock.cycles
    image = checkpoint(mercury)
    print(f"snapshot: {image.num_frames} frames in "
          f"{(clock.cycles - t0) / 3e6:.3f} ms; mode = {mercury.mode.value}")

    # a software failure corrupts the system...
    kernel.fs.inodes.clear()
    kernel.procs.tasks.clear()
    print("injected failure: filesystem metadata and process table wiped")

    t0 = clock.cycles
    restore(image, mercury)
    print(f"restored from checkpoint in {(clock.cycles - t0) / 3e6:.3f} ms; "
          f"critical.conf exists = {kernel.fs.exists('/etc/critical.conf')}, "
          f"tasks = {len(kernel.procs.live_tasks())}")

    # ---- §6.2: self-healing ------------------------------------------------
    print("\n== self-healing (6.2) ==")
    healer = SelfHealer(mercury)
    task = kernel.scheduler.current
    kernel.scheduler.runqueue.extend([task, task])   # corrupt the runqueue
    inode = kernel.fs.inodes["/etc/critical.conf"]
    inode.nlink = -5                                  # and an inode
    print("injected anomalies: duplicated runqueue entries, bad nlink")
    records = healer.scan()
    for r in records:
        print(f"sensor {r.sensor_name!r}: healed={r.healed} in "
              f"{r.repair_cycles / 3e3:.1f} µs")
    print(f"mode after healing = {mercury.mode.value} (VMM detached again)")

    # ---- §6.4: live kernel update ------------------------------------------
    print("\n== live update (6.4) ==")
    updater = LiveUpdater(mercury)

    def hardened_getpid(k, c, t):
        # the "patched" syscall: same semantics, new implementation
        return t.pid

    record = updater.apply(KernelPatch(
        name="CVE-2006-XXXX-fix",
        target_syscall="getpid",
        replacement=hardened_getpid,
        validator=lambda k: k.syscall(c := mercury.machine.boot_cpu,
                                      "getpid") > 0))
    print(f"patch {record.patch.name!r} applied live: attach "
          f"{record.attach_us:.1f} µs, detach {record.detach_us:.1f} µs, "
          f"rolled_back={record.rolled_back}")
    print(f"mode after update = {mercury.mode.value}")

    print(f"\nall dependability features used; total mode switches: "
          f"{len(mercury.switch_records)}; steady-state overhead: none")


if __name__ == "__main__":
    main()
