#!/usr/bin/env python3
"""HPC cluster availability (§6.5): survive a predicted hardware failure
without losing a step of the computation, and compare against the
stop-and-restart / periodic-checkpoint policies.

Run:  python examples/hpc_cluster.py
"""

from repro.scenarios.cluster import HpcCluster


def main() -> None:
    total_steps, fail_at = 60, 37

    print(f"job: {total_steps} steps; hardware failure predicted at "
          f"step {fail_at}\n")
    print(f"{'policy':<24}{'lost steps':>12}{'downtime':>14}")
    print("-" * 50)
    for policy in ("self-virtualization", "checkpoint", "restart"):
        cluster = HpcCluster(num_nodes=3)
        report = cluster.run_with_policy(policy, total_steps=total_steps,
                                         fail_at_step=fail_at,
                                         checkpoint_every=15)
        print(f"{policy:<24}{report.job_steps_lost:>12}"
              f"{report.downtime_ms():>11.2f} ms")

    print("\nwalkthrough of the self-virtualization path:")
    cluster = HpcCluster(num_nodes=2)
    node, standby = cluster.nodes
    node.job_progress = 0
    for _ in range(10):
        node.run_job_step()
    print(f"  {node.name}: job at step {node.job_progress}, "
          f"mode = {node.mercury.mode.value}")

    # the hardware monitors trip (§6.5: temperature/fan/voltage/power)
    node.monitor.temperature_c = 97.0
    print(f"  {node.name}: temperature {node.monitor.temperature_c} °C — "
          f"failure predicted: {node.monitor.predicts_failure()}")

    host = cluster.handle_warning(node)
    print(f"  evacuated to {host.name}; "
          f"migration downtime "
          f"{cluster._last_migration.downtime_ms():.3f} ms")

    node.fail()
    print(f"  {node.name}: hardware failed — harmless, state = "
          f"{node.state.value}")

    for _ in range(5):
        host.run_job_step()
    print(f"  {host.name}: job continues, now at step {host.job_progress} "
          f"(nothing lost)")


if __name__ == "__main__":
    main()
