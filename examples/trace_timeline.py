#!/usr/bin/env python3
"""Where do the ~0.2 ms of a mode switch go?  (§4.3 / §7.4)

Attaches and detaches the VMM under the cycle-domain tracer, then prints
the reconstructed span timeline and the per-phase latency breakdown — the
decomposition behind the paper's headline switch-latency figure.  Also
demonstrates the two export paths: Chrome ``trace_event`` JSON (load in
chrome://tracing or Perfetto) and the canonical form the golden-trace
regression tests diff.

Run:  python examples/trace_timeline.py
"""

import tempfile
from pathlib import Path

from repro import Machine, Mercury, paper_config, trace


def main() -> None:
    machine = Machine(paper_config(num_cpus=2))
    mercury = Mercury(machine)
    kernel = mercury.create_kernel(name="traced-linux")
    cpu = machine.boot_cpu
    for _ in range(8):  # a live process population so transfer has work
        kernel.syscall(cpu, "fork")
    freq = machine.config.cost.freq_mhz

    with trace.tracing(machine) as tracer:
        mercury.attach()
        mercury.detach()

    events = tracer.events()
    assert trace.validate(events, dropped=tracer.dropped) == []
    print(f"traced one attach/detach round-trip: {len(events)} events, "
          f"{tracer.dropped} dropped")
    print()
    print("timeline:")
    print(trace.format_timeline(events, freq_mhz=freq))
    print()
    print("per-phase breakdown:")
    print(trace.format_phase_table(
        trace.phase_summary(events, names=trace.SWITCH_PHASES),
        freq_mhz=freq))

    out = Path(tempfile.gettempdir()) / "mercury_switch_trace.json"
    trace.write_chrome_trace(out, events, freq_mhz=freq)
    print()
    print(f"Chrome trace_event JSON written to {out}")


if __name__ == "__main__":
    main()
