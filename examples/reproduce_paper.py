#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation (§7).

Produces Table 1 (lmbench UP), Table 2 (lmbench SMP), the Fig. 3/4
relative-performance series, and the §7.4 mode-switch measurement —
printed in the paper's layout with the paper's reference values alongside.

Run:  python examples/reproduce_paper.py [--quick]

``--quick`` restricts to the N-L and X-0 columns (~4x faster).
"""

import argparse
import dataclasses

from repro import Machine, Mercury, MachineConfig
from repro.bench.configs import CONFIG_KEYS
from repro.bench.report import (format_lmbench_table, format_relative_figure,
                                format_switch_times)
from repro.bench.runner import (relative_to_native, run_app_suite,
                                run_lmbench_suite)
from repro.core.switch import Direction

PAPER_TABLE1 = {
    "Fork Process": (98, 482), "Exec Process": (372, 1233),
    "Sh Process": (1203, 2977), "Ctx (2p/0k)": (1.64, 5.10),
    "Ctx (16p/16k)": (2.73, 6.76), "Ctx (16p/64k)": (10.30, 15.73),
    "Mmap LT": (3724, 10579), "Prot Fault": (0.61, 0.97),
    "Page Fault": (1.22, 3.09),
}


def print_with_reference(table: dict) -> None:
    print(f"  {'row':<16}{'N-L sim':>10}{'N-L paper':>11}"
          f"{'X-0 sim':>10}{'X-0 paper':>11}")
    print("  " + "-" * 58)
    for row, (p_nl, p_x0) in PAPER_TABLE1.items():
        print(f"  {row:<16}{table[row]['N-L']:>10.2f}{p_nl:>11}"
              f"{table[row]['X-0']:>10.2f}{p_x0:>11}")


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--quick", action="store_true",
                        help="N-L and X-0 columns only")
    args = parser.parse_args()
    keys = ("N-L", "X-0") if args.quick else CONFIG_KEYS
    config = dataclasses.replace(MachineConfig(), mem_kb=262_144)

    # ---- Table 1 ------------------------------------------------------
    print("running lmbench, uniprocessor mode...")
    t1 = run_lmbench_suite(num_cpus=1, config=config, keys=keys)
    print()
    print(format_lmbench_table(
        t1, "Table 1. Lmbench latency results in uniprocessor mode",
        keys=keys))
    print()
    print("  simulated vs paper (µs):")
    print_with_reference(t1)

    # ---- Table 2 --------------------------------------------------------
    print("\nrunning lmbench, SMP mode...")
    t2 = run_lmbench_suite(num_cpus=2, config=config, keys=keys)
    print()
    print(format_lmbench_table(
        t2, "Table 2. Lmbench latency results in SMP mode", keys=keys))

    # ---- Figures 3 and 4 --------------------------------------------------
    for cpus, name in ((1, "Fig. 3"), (2, "Fig. 4")):
        mode = "uniprocessor" if cpus == 1 else "SMP"
        print(f"\nrunning application benchmarks, {mode} mode...")
        apps = run_app_suite(num_cpus=cpus, config=config, keys=keys)
        rel = relative_to_native(apps)
        print()
        print(format_relative_figure(
            rel, f"{name}. Relative performance of Mercury against Linux "
                 f"and Xen-Linux in {mode} mode", keys=keys))

    # ---- §7.4 mode switch time ---------------------------------------------
    print("\nmeasuring mode switch time (Section 7.4)...")
    machine = Machine(config)
    mercury = Mercury(machine)
    kernel = mercury.create_kernel(image_pages=384)
    cpu = machine.boot_cpu
    for _ in range(41):
        kernel.syscall(cpu, "fork")
    for _ in range(5):
        mercury.attach()
        mercury.detach()
    print()
    print(format_switch_times(
        mercury.mean_switch_us(Direction.TO_VIRTUAL),
        mercury.mean_switch_us(Direction.TO_NATIVE)))


if __name__ == "__main__":
    main()
