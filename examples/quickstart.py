#!/usr/bin/env python3
"""Quickstart: self-virtualize a running OS.

Builds a simulated machine, boots a Linux-like kernel under Mercury, runs
some work in native mode, attaches the pre-cached VMM underneath the
*running* OS, keeps working, and detaches again — the paper's core
demonstration, in ~40 lines of user code.

Run:  python examples/quickstart.py
"""

from repro import Machine, Mercury, paper_config

def main() -> None:
    # the paper's testbed: 3 GHz CPU, 900 000 KB of memory (§7.1)
    machine = Machine(paper_config(num_cpus=1))
    mercury = Mercury(machine)              # pre-caches the VMM at boot
    kernel = mercury.create_kernel(name="mercury-linux")
    cpu = machine.boot_cpu

    print(f"booted {kernel.name!r}; mode = {mercury.mode.value}")
    print(f"pre-cached VMM reserves {mercury.precache_info.reserved_kb} KB")

    # ---- work in native mode: full speed, no VMM in the way -------------
    fd = kernel.syscall(cpu, "open", "/var/data", True)
    kernel.syscall(cpu, "write", fd, "written-native", 4096)
    pid = kernel.syscall(cpu, "fork")
    kernel.run_and_reap(cpu, kernel.procs.get(pid))
    print("native-mode work done (fork + file I/O)")

    # ---- attach the VMM underneath the running OS -----------------------
    record = mercury.attach()
    print(f"attached VMM in {record.us():.1f} µs "
          f"({record.pt_pages} page-table pages validated); "
          f"mode = {mercury.mode.value}")

    # applications are undisturbed: same files, same processes, new work
    kernel.syscall(cpu, "write", fd, "written-virtual", 4096)
    pid = kernel.syscall(cpu, "fork")
    kernel.run_and_reap(cpu, kernel.procs.get(pid))
    print("virtual-mode work done — the OS now runs de-privileged on Xen")

    # the attached VMM is full-fledged: host an unmodified guest on top
    guest = mercury.host_guest(name="domU")
    gfd = guest.syscall(cpu, "open", "/guest-file", True)
    guest.syscall(cpu, "write", gfd, "from-the-guest", 4096)
    guest.syscall(cpu, "fsync", gfd)
    print(f"hosted guest {guest.name!r} doing split-driver I/O")
    mercury.shutdown_guest(guest)

    # ---- detach: back to bare hardware, full speed -----------------------
    record = mercury.detach()
    print(f"detached VMM in {record.us():.1f} µs; mode = {mercury.mode.value}")

    kernel.syscall(cpu, "lseek", fd, 0)
    blocks = kernel.syscall(cpu, "read", fd, 2 * 4096)
    print(f"file contents after the round trip: {blocks}")
    print(f"total mode switches: {len(mercury.switch_records)}")


if __name__ == "__main__":
    main()
