#!/usr/bin/env python3
"""Hardware-assisted self-virtualization (§8's future work, implemented).

Runs the same attach → work → detach cycle through the paper's software
switch and through the VT-x/VMCS/EPT path, with a metrics breakdown
showing *where* the costs went in each.

Run:  python examples/hardware_assisted.py
"""

import dataclasses

from repro import Machine, Mercury, MachineConfig
from repro.core.hvm import HvmMercury
from repro.metrics import MetricsCollector, format_report

CONFIG = dataclasses.replace(MachineConfig(), mem_kb=131_072)
PROCESSES = 20


def software_path() -> None:
    print("== software switch (the paper's Mercury) ==")
    machine = Machine(CONFIG)
    mercury = Mercury(machine)
    kernel = mercury.create_kernel(image_pages=256)
    cpu = machine.boot_cpu
    for _ in range(PROCESSES):
        kernel.syscall(cpu, "fork")

    collector = MetricsCollector(machine, kernel=kernel, mercury=mercury)
    rec = mercury.attach()
    print(f"attach: {rec.us():.1f} µs "
          f"({rec.pt_pages} page-table pages re-validated)")

    _, delta = collector.measure(_workload, kernel, cpu)
    print(format_report(delta, "virtual-mode workload (paravirtual):"))
    rec = mercury.detach()
    print(f"detach: {rec.us():.1f} µs\n")


def hardware_path() -> None:
    print("== hardware-assisted switch (VT-x VMCS + EPT) ==")
    machine = Machine(CONFIG)
    hvm = HvmMercury(machine)
    kernel = hvm.create_kernel(image_pages=256)
    cpu = machine.boot_cpu
    for _ in range(PROCESSES):
        kernel.syscall(cpu, "fork")

    collector = MetricsCollector(machine, kernel=kernel)
    rec = hvm.attach()
    print(f"attach: {rec.us():.1f} µs "
          f"(EPT built over {rec.ept_frames} frames — no recompute)")

    _, delta = collector.measure(_workload, kernel, cpu)
    print(format_report(delta, "guest-mode workload (HVM):"))
    rec = hvm.detach()
    print(f"detach: {rec.us():.1f} µs")
    print(f"\nVM entries: {hvm.vmcs.vmentries}, "
          f"VM exits: {hvm.vmcs.vmexits} "
          f"(only exit-controlled operations leave the guest)")


def _workload(kernel, cpu) -> None:
    for _ in range(3):
        child = kernel.spawn_process(cpu, "job", image_pages=96)
        kernel.run_and_reap(cpu, child)
    fd = kernel.syscall(cpu, "open", "/scratch", True)
    kernel.syscall(cpu, "write", fd, "data", 8 * 4096)
    kernel.syscall(cpu, "fsync", fd)


if __name__ == "__main__":
    software_path()
    hardware_path()
